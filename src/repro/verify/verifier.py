"""The State Verifier (paper §5.1.3).

Checks two things:

1. **Decode-flow validity**: executing an instruction's uops against a
   running uop-level state must reproduce the trace's recorded register
   writes, flag updates, and store values.
2. **Frame validity**: executing an optimized frame from the
   architectural state at its boundary must satisfy the paper's three
   rules — every load is covered by the initial memory map, the final
   memory map matches, and the architectural register state (and flags)
   match at the frame boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.record import TraceRecord
from repro.uops.uop import UReg
from repro.verify.frame_exec import FrameExecutionError, execute_frame
from repro.verify.state import ArchTracker, MemoryMaps


class VerificationError(Exception):
    """An optimized frame (or decode flow) diverged from the trace."""


@dataclass
class FrameVerificationReport:
    """Details of one frame-instance verification."""

    checked_registers: int
    checked_store_bytes: int
    fired: bool


class StateVerifier:
    """Frame-boundary equivalence checker."""

    def __init__(self) -> None:
        self.frames_verified = 0
        self.instances_checked = 0

    def verify_frame_instance(
        self,
        frame,
        records: list[TraceRecord],
        tracker: ArchTracker,
    ) -> FrameVerificationReport:
        """Verify one dynamic instance of an optimized frame.

        ``tracker`` must hold the architectural state *before* the first
        record.  Raises :class:`VerificationError` on any mismatch.
        """
        if frame.buffer is None:
            raise VerificationError("frame has no optimization buffer")
        maps = MemoryMaps.from_records(records)
        live_in = tracker.live_in_regs()
        flags_in = tracker.live_in_flags()
        try:
            outcome = execute_frame(
                frame.buffer, live_in, flags_in, maps.read_initial
            )
        except FrameExecutionError as exc:
            raise VerificationError(f"frame execution failed: {exc}") from exc
        if outcome.fired:
            raise VerificationError(
                f"assertion fired on a path-matching instance "
                f"(slot {outcome.firing_slot})"
            )

        # Rule 3: architectural register state equal at the frame boundary.
        expected = ArchTracker()
        expected.regs = dict(tracker.regs)
        expected.flags = tracker.flags
        for record in records:
            expected.apply(record)
        for i in range(8):
            got = outcome.final_regs[UReg(i)]
            want = expected.regs[i]
            if got != want:
                raise VerificationError(
                    f"register {UReg(i).name} mismatch at frame boundary: "
                    f"frame={got:#x} trace={want:#x} (frame @ {frame.start_pc:#x})"
                )
        if outcome.final_flags != expected.flags:
            raise VerificationError(
                f"flags mismatch at frame boundary: frame={outcome.final_flags:#x} "
                f"trace={expected.flags:#x} (frame @ {frame.start_pc:#x})"
            )

        # Rule 2: all memory state affected by the trace is equivalently
        # affected by the frame.
        frame_bytes: dict[int, int] = {}
        for address, size, value in outcome.stores:
            for i in range(size):
                frame_bytes[(address + i) & 0xFFFFFFFF] = (value >> (8 * i)) & 0xFF
        if frame_bytes != maps.final:
            missing = {
                a: b for a, b in maps.final.items() if frame_bytes.get(a) != b
            }
            raise VerificationError(
                f"final memory map mismatch (frame @ {frame.start_pc:#x}): "
                f"{len(missing)} differing bytes, e.g. "
                f"{dict(list(missing.items())[:4])}"
            )
        self.instances_checked += 1
        return FrameVerificationReport(
            checked_registers=8,
            checked_store_bytes=len(frame_bytes),
            fired=False,
        )
