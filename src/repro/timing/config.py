"""Processor configuration (paper Table 2), with structural validation.

Every entry point that builds timing structures from a configuration
calls :meth:`ProcessorConfig.validate` first, so degenerate geometries
(zero associativity, undersized caches, zero-width pipelines, empty
functional-unit pools) are rejected up front with a :class:`ConfigError`
naming the offending field — instead of a ``ZeroDivisionError`` deep in
cache construction or an infinite issue loop at simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ConfigError(ValueError):
    """A structurally invalid processor configuration.

    ``field`` names the offending configuration field (dotted for
    nested cache geometry, e.g. ``dcache.associativity``) so fuzzers
    and CLI users see *which* knob is broken, not just that one is.
    """

    def __init__(self, field_name: str, message: str) -> None:
        self.field = field_name
        super().__init__(f"{field_name}: {message}")


def _require(condition: bool, field_name: str, message: str) -> None:
    if not condition:
        raise ConfigError(field_name, message)


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


#: The widest single x86 instruction the translator emits (CALL: 4 uops).
#: A fill-unit line must be able to hold at least one whole instruction,
#: or the fill unit degenerates into emitting lines that can never grow.
WIDEST_X86_UOPS = 4


@dataclass
class FillUnitConfig:
    """Trace-cache fill-unit line limits (paper §5.3).

    Lives here (not in :mod:`repro.tracecache`) so it is part of
    :class:`ProcessorConfig` — sweeps vary frame limits per cell through
    the ordinary config fingerprint instead of monkeypatching the fill
    unit.  Defaults match the paper's trace cache: 32-uop lines ending
    at the third conditional branch.
    """

    max_uops: int = 32
    max_branches: int = 3

    def validate(self, prefix: str = "fill_unit") -> None:
        _require(
            self.max_uops >= 1,
            f"{prefix}.max_uops",
            f"must be >= 1, got {self.max_uops}",
        )
        _require(
            self.max_uops >= WIDEST_X86_UOPS,
            f"{prefix}.max_uops",
            f"must be >= the widest single instruction "
            f"({WIDEST_X86_UOPS} uops), got {self.max_uops}",
        )
        _require(
            self.max_branches >= 1,
            f"{prefix}.max_branches",
            f"must be >= 1, got {self.max_branches}",
        )


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 4
    hit_latency: int = 2

    def validate(self, prefix: str = "cache") -> None:
        """Reject degenerate geometries with the offending field named."""
        _require(
            self.line_bytes >= 1 and _is_power_of_two(self.line_bytes),
            f"{prefix}.line_bytes",
            f"must be a power of two >= 1, got {self.line_bytes}",
        )
        _require(
            self.associativity >= 1,
            f"{prefix}.associativity",
            f"must be >= 1, got {self.associativity}",
        )
        way_bytes = self.line_bytes * self.associativity
        _require(
            self.size_bytes >= way_bytes,
            f"{prefix}.size_bytes",
            f"must be >= line_bytes*associativity ({way_bytes}), "
            f"got {self.size_bytes}",
        )
        _require(
            self.size_bytes % way_bytes == 0,
            f"{prefix}.size_bytes",
            f"must be a multiple of line_bytes*associativity ({way_bytes}), "
            f"got {self.size_bytes}",
        )
        _require(
            self.hit_latency >= 1,
            f"{prefix}.hit_latency",
            f"must be >= 1, got {self.hit_latency}",
        )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class ProcessorConfig:
    """The paper's 8-wide deeply pipelined processor (Table 2).

    ``branch_resolution_depth`` models the 15-cycle minimum between the
    fetch of a branch and the earliest point of its execution.
    """

    fetch_width: int = 8  # uops per cycle
    retire_width: int = 8
    x86_decode_width: int = 4  # x86 instructions per cycle through decoders
    window_size: int = 512
    branch_resolution_depth: int = 15

    simple_alus: int = 6
    complex_alus: int = 2
    fpus: int = 3
    load_store_units: int = 4

    ghr_bits: int = 18  # gshare history length
    btb_entries: int = 4096
    ras_depth: int = 16

    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=8 * 1024, hit_latency=1)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, hit_latency=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=512 * 1024, associativity=8, hit_latency=10
        )
    )
    memory_latency: int = 50

    frame_cache_uops: int = 16 * 1024  # ~64kB equivalent
    cache_switch_penalty: int = 1  # Wait cycles between FCache and ICache

    mul_latency: int = 4
    div_latency: int = 20

    #: Trace-cache fill-unit line limits (only the ``tcache`` front end
    #: reads these; defaults keep every existing figure byte-identical).
    fill_unit: FillUnitConfig = field(default_factory=FillUnitConfig)

    def validate(self) -> None:
        """Reject structurally invalid configurations (ConfigError).

        Checks are ordered front end → execution → memory so the first
        failure reported is the most upstream one.  Every check exists
        because the named degenerate value either crashed (cache
        ``num_sets == 0``), hung (``simple_alus == 0`` spins the issue
        loop forever), or silently mismodeled (``ghr_bits == 0`` folds
        the whole predictor into one counter).
        """
        _require(
            self.fetch_width >= 1,
            "fetch_width", f"must be >= 1, got {self.fetch_width}",
        )
        _require(
            self.retire_width >= 1,
            "retire_width", f"must be >= 1, got {self.retire_width}",
        )
        _require(
            self.x86_decode_width >= 1,
            "x86_decode_width", f"must be >= 1, got {self.x86_decode_width}",
        )
        _require(
            self.window_size >= self.fetch_width,
            "window_size",
            f"must be >= fetch_width ({self.fetch_width}) or fetch can "
            f"never make progress, got {self.window_size}",
        )
        _require(
            self.branch_resolution_depth >= 0,
            "branch_resolution_depth",
            f"must be >= 0, got {self.branch_resolution_depth}",
        )
        for name in ("simple_alus", "complex_alus", "fpus", "load_store_units"):
            count = getattr(self, name)
            _require(
                count >= 1,
                name,
                f"must be >= 1 (a zero-capacity pool deadlocks issue), "
                f"got {count}",
            )
        _require(
            self.ghr_bits >= 1,
            "ghr_bits",
            f"must be >= 1 (0 degenerates gshare to one counter), "
            f"got {self.ghr_bits}",
        )
        _require(
            _is_power_of_two(self.btb_entries),
            "btb_entries",
            f"must be a power of two >= 1, got {self.btb_entries}",
        )
        _require(
            self.ras_depth >= 1,
            "ras_depth", f"must be >= 1, got {self.ras_depth}",
        )
        self.icache.validate("icache")
        self.dcache.validate("dcache")
        self.l2.validate("l2")
        _require(
            self.memory_latency >= 1,
            "memory_latency", f"must be >= 1, got {self.memory_latency}",
        )
        _require(
            self.frame_cache_uops >= 1,
            "frame_cache_uops",
            f"must be >= 1, got {self.frame_cache_uops}",
        )
        self.fill_unit.validate("fill_unit")
        _require(
            self.cache_switch_penalty >= 0,
            "cache_switch_penalty",
            f"must be >= 0, got {self.cache_switch_penalty}",
        )
        _require(
            self.mul_latency >= 1,
            "mul_latency", f"must be >= 1, got {self.mul_latency}",
        )
        _require(
            self.div_latency >= 1,
            "div_latency", f"must be >= 1, got {self.div_latency}",
        )

    def table2(self) -> str:
        """Render the configuration as the paper's Table 2."""
        rows = [
            ("Pipeline", f"{self.fetch_width}-wide fetch/issue/retire"),
            ("", f"x86 decoders: {self.x86_decode_width} per cycle"),
            ("", f"{self.branch_resolution_depth} cycles (min) for BR resolution"),
            ("Predictor", f"{self.ghr_bits}-bit gshare"),
            ("Inst Window", f"{self.window_size} instructions"),
            ("ExeUnits", f"{self.simple_alus} simple ALU"),
            ("", f"{self.complex_alus} complex ALU"),
            ("", f"{self.fpus} FPUs"),
            ("", f"{self.load_store_units} load/store units"),
            ("Frame/Trace", f"{_count(self.frame_cache_uops)} micro-operations"),
            ("Cache", f"(approximately {_bytes(self.frame_cache_uops * 4)})"),
            (
                "L1 DCache",
                f"{_bytes(self.dcache.size_bytes)}, "
                f"{self.dcache.hit_latency} cycle hit",
            ),
            (
                "",
                f"{self.load_store_units} read and "
                f"{self.load_store_units} write ports",
            ),
            (
                "L2 Cache",
                f"{_bytes(self.l2.size_bytes)}, {self.l2.hit_latency} cycle hit",
            ),
            ("Memory", f"{self.memory_latency} cycles"),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def _count(value: int) -> str:
    """``16k`` for exact multiples of 1024, the exact count otherwise.

    The old renderer floor-divided, so a 512-uop frame cache printed as
    ``0k`` and 1536 printed as ``1k``.
    """
    if value >= 1024 and value % 1024 == 0:
        return f"{value // 1024}k"
    return str(value)


def _bytes(value: int) -> str:
    if value >= 1024 and value % 1024 == 0:
        return f"{value // 1024}kB"
    return f"{value}B"


def default_config() -> ProcessorConfig:
    """The baseline configuration used throughout the evaluation."""
    return ProcessorConfig()


def large_icache_config() -> ProcessorConfig:
    """The 64kB-ICache reference configuration (paper §5.3)."""
    config = ProcessorConfig()
    config.icache = CacheConfig(size_bytes=64 * 1024, hit_latency=1)
    return config
