"""Processor configuration (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 4
    hit_latency: int = 2


@dataclass
class ProcessorConfig:
    """The paper's 8-wide deeply pipelined processor (Table 2).

    ``branch_resolution_depth`` models the 15-cycle minimum between the
    fetch of a branch and the earliest point of its execution.
    """

    fetch_width: int = 8  # uops per cycle
    retire_width: int = 8
    x86_decode_width: int = 4  # x86 instructions per cycle through decoders
    window_size: int = 512
    branch_resolution_depth: int = 15

    simple_alus: int = 6
    complex_alus: int = 2
    fpus: int = 3
    load_store_units: int = 4

    ghr_bits: int = 18  # gshare history length
    btb_entries: int = 4096
    ras_depth: int = 16

    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=8 * 1024, hit_latency=1)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, hit_latency=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=512 * 1024, associativity=8, hit_latency=10
        )
    )
    memory_latency: int = 50

    frame_cache_uops: int = 16 * 1024  # ~64kB equivalent
    cache_switch_penalty: int = 1  # Wait cycles between FCache and ICache

    mul_latency: int = 4
    div_latency: int = 20

    def table2(self) -> str:
        """Render the configuration as the paper's Table 2."""
        rows = [
            ("Pipeline", f"{self.fetch_width}-wide fetch/issue/retire"),
            ("", f"x86 decoders: {self.x86_decode_width} per cycle"),
            ("", f"{self.branch_resolution_depth} cycles (min) for BR resolution"),
            ("Predictor", f"{self.ghr_bits}-bit gshare"),
            ("Inst Window", f"{self.window_size} instructions"),
            ("ExeUnits", f"{self.simple_alus} simple ALU"),
            ("", f"{self.complex_alus} complex ALU"),
            ("", f"{self.fpus} FPUs"),
            ("", f"{self.load_store_units} load/store units"),
            ("Frame/Trace", f"{self.frame_cache_uops // 1024}k micro-operations"),
            ("Cache", "(approximately 64kB)"),
            (
                "L1 DCache",
                f"{self.dcache.size_bytes // 1024}kB, "
                f"{self.dcache.hit_latency} cycle hit",
            ),
            ("", "4 read and 4 write ports"),
            (
                "L2 Cache",
                f"{self.l2.size_bytes // 1024}kB, {self.l2.hit_latency} cycle hit",
            ),
            ("Memory", f"{self.memory_latency} cycles"),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def default_config() -> ProcessorConfig:
    """The baseline configuration used throughout the evaluation."""
    return ProcessorConfig()


def large_icache_config() -> ProcessorConfig:
    """The 64kB-ICache reference configuration (paper §5.3)."""
    config = ProcessorConfig()
    config.icache = CacheConfig(size_bytes=64 * 1024, hit_latency=1)
    return config
