"""Static schedule templates for the timing model (DESIGN.md §11).

The per-uop scheduling facts the pipeline model needs — functional-unit
class, operand dependence lists, flags dependence, static latency class —
are *static* per decoded instruction and per optimized frame, yet the
original model re-derived them from `Uop`/`OptUop` attributes for every
dynamic instance.  This module precomputes them once:

* :class:`ScheduleBuilder` caches an :class:`InstrDecode` per static x86
  instruction (keyed by instruction object identity; decode depends only
  on instruction content, never on the dynamic record) and a
  :class:`FrameSchedule` per optimized frame (stored on the frame, whose
  buffer is immutable once it enters the frame cache);
* uop schedules are flat tuples consumed by
  ``PipelineModel._execute_dyn_sched``/``_execute_opt_sched`` without any
  per-instance attribute chasing;
* frame slots use dense lists indexed by slot number instead of the
  original per-instance ``slot_values``/``slot_flags`` dicts.

The contract is **cycle identity**: scheduling from templates must produce
the same :class:`~repro.timing.pipeline.SimResult` as the reference
object-walking path for every block stream.  ``PipelineModel`` keeps the
reference implementation selectable (``scheduling="reference"``) and the
golden A/B test (`tests/timing/test_schedule_ab.py`) pins the equivalence
on real workloads.

Dyn (ICache/trace-cache) schedule tuple layout::

    (fu, srcs, reads_flags, kind, latency, dst, writes_flags, size)

Opt (frame) schedule tuple layout::

    (fu, deps, reads_flags, flags_src, kind, latency, slot, writes_flags,
     size)

``kind`` is 0 for fixed-latency ops (``latency`` holds the resolved cycle
count), 1 for loads, 2 for stores (latency resolved dynamically against
the D-cache).  ``deps`` entries are ``(is_slot, key)``: a buffer-slot
reference or a live-in architectural register number.
"""

from __future__ import annotations

from repro.optimizer.optuop import DefRef, OptUop
from repro.timing.config import ProcessorConfig
from repro.uops.uop import Uop, UopOp

#: ``kind`` codes in schedule tuples.
KIND_ALU = 0
KIND_LOAD = 1
KIND_STORE = 2

_COMPLEX_OPS = (UopOp.MUL, UopOp.DIVQ, UopOp.DIVR)


class InstrDecode:
    """Static per-instruction decode facts shared by all dynamic instances.

    ``sched`` holds one dyn schedule tuple per uop of the instruction's
    decode flow; ``event_kind``/``event_offset`` describe the prediction
    event of its control uop (``None`` kind = no predictable event, e.g.
    a direct JMP or a non-branch instruction).
    """

    __slots__ = ("sched", "event_kind", "event_offset")

    def __init__(
        self,
        sched: tuple,
        event_kind: str | None,
        event_offset: int,
    ) -> None:
        self.sched = sched
        self.event_kind = event_kind
        self.event_offset = event_offset


class FrameSchedule:
    """Static dispatch/schedule template of one optimized frame.

    Built once per frame (after optimization, when the buffer is final)
    and cached on ``frame.sched_template``; every dynamic dispatch then
    reuses the kept-uop list, schedule tuples, memory-uop positions, and
    live-out commit plan without walking the buffer again.
    """

    __slots__ = (
        "kept",
        "sched",
        "nslots",
        "live_out_plan",
        "flags_out_slot",
        "exit_control_pos",
        "mem_positions",
        "fire_addresses",
        "fetched_loads",
        "raw_loads",
    )

    def __init__(
        self,
        kept: list[OptUop],
        sched: list[tuple],
        nslots: int,
        live_out_plan: tuple = (),
        flags_out_slot: int | None = None,
        exit_control_pos: int | None = None,
        mem_positions: tuple = (),
        fire_addresses: list | None = None,
        fetched_loads: int = 0,
        raw_loads: int = 0,
    ) -> None:
        self.kept = kept
        self.sched = sched
        self.nslots = nslots
        #: ``(arch_reg, slot)`` pairs: frame-exit registers bound to a
        #: slot's value (LiveIn bindings leave availability unchanged).
        self.live_out_plan = live_out_plan
        #: slot whose flag output the frame publishes at exit, or None
        #: when the frame leaves the outer flags availability unchanged
        #: (no kept uop writes the live-out flags slot).
        self.flags_out_slot = flags_out_slot
        #: position (in ``kept``) of the frame's exit control uop.
        self.exit_control_pos = exit_control_pos
        #: ``(position, uop)`` pairs of the kept memory uops.
        self.mem_positions = mem_positions
        #: construction-time addresses, used by firing dispatches.
        self.fire_addresses = fire_addresses if fire_addresses is not None else []
        self.fetched_loads = fetched_loads
        self.raw_loads = raw_loads


class ScheduleBuilder:
    """Builds and caches schedule templates for one processor config.

    Latencies are resolved against the config at build time, so the
    builder must share its :class:`ProcessorConfig` with the pipeline
    model consuming its templates (the sequencers and the model are
    constructed from the same config object).
    """

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        #: id(Instruction) -> (Instruction, InstrDecode).  The decode
        #: depends only on instruction *content*, and the keyed object is
        #: retained in the value, so identity keying is safe for the
        #: builder's lifetime (one simulation run).
        self._instr_cache: dict[int, tuple] = {}

    # ------------------------------------------------------------ uops

    def _fu_and_latency(self, op: UopOp) -> tuple[str, int, int]:
        """(fu class, kind code, fixed latency) of an opcode."""
        if op is UopOp.LOAD:
            return "load", KIND_LOAD, 0
        if op is UopOp.STORE:
            return "store", KIND_STORE, 0
        if op is UopOp.MUL:
            return "complex", KIND_ALU, self.config.mul_latency
        if op in (UopOp.DIVQ, UopOp.DIVR):
            return "complex", KIND_ALU, self.config.div_latency
        return "simple", KIND_ALU, 1

    def dyn_sched(self, uop: Uop) -> tuple:
        """Schedule tuple of one pre-rename uop (static fields only)."""
        fu, kind, latency = self._fu_and_latency(uop.op)
        srcs = tuple(
            int(r)
            for r in (uop.src_a, uop.src_b, uop.src_data)
            if r is not None
        )
        return (
            fu,
            srcs,
            uop.reads_flags,
            kind,
            latency,
            int(uop.dst) if uop.dst is not None else None,
            uop.writes_flags,
            uop.size,
        )

    def opt_sched(self, uop: OptUop) -> tuple:
        """Schedule tuple of one remapped frame uop."""
        fu, kind, latency = self._fu_and_latency(uop.op)
        deps = tuple(
            (True, operand.slot)
            if isinstance(operand, DefRef)
            else (False, int(operand.reg))
            for _, operand in uop.operands()
        )
        return (
            fu,
            deps,
            uop.reads_flags,
            uop.flags_src,
            kind,
            latency,
            uop.slot,
            uop.writes_flags,
            uop.size,
        )

    # ----------------------------------------------------- instructions

    def instr_decode(self, instr) -> InstrDecode:
        """Cached decode facts for one injected instruction."""
        instruction = instr.record.instruction
        key = id(instruction)
        hit = self._instr_cache.get(key)
        if hit is not None:
            return hit[1]
        decode = self._build_instr_decode(instr)
        self._instr_cache[key] = (instruction, decode)
        return decode

    def _build_instr_decode(self, instr) -> InstrDecode:
        from repro.x86.instructions import Mnemonic

        sched = tuple(self.dyn_sched(uop) for uop in instr.uops)
        control_offset = None
        for i, uop in enumerate(instr.uops):
            if uop.op in (UopOp.BR, UopOp.JMP, UopOp.JMPI):
                control_offset = i
                break
        kind: str | None = None
        if control_offset is not None:
            instruction = instr.record.instruction
            mnemonic = instruction.mnemonic
            if mnemonic is Mnemonic.JCC:
                kind = "cond"
            elif mnemonic is Mnemonic.CALL:
                kind = "callind" if instruction.is_indirect else "call"
            elif mnemonic is Mnemonic.RET:
                kind = "ret"
            elif mnemonic is Mnemonic.JMP and instruction.is_indirect:
                kind = "jmpi"
        return InstrDecode(sched, kind, control_offset or 0)

    # ----------------------------------------------------------- frames

    def frame_schedule(self, frame) -> FrameSchedule:
        """Cached schedule template of an optimized frame."""
        cached = frame.sched_template
        if cached is not None:
            return cached
        buffer = frame.buffer
        kept = [u for u in buffer.uops if u.valid]
        sched = [self.opt_sched(u) for u in kept]
        live_out_plan = tuple(
            (int(reg), operand.slot)
            for reg, operand in buffer.live_out.items()
            if isinstance(operand, DefRef)
        )
        flags_out_slot = None
        live_flags = buffer.flags_live_out_slot
        if live_flags is not None:
            for uop in kept:
                if uop.slot == live_flags and uop.writes_flags:
                    flags_out_slot = live_flags
                    break
        exit_control_pos = None
        for position in range(len(kept) - 1, -1, -1):
            if kept[position].is_control:
                exit_control_pos = position
                break
        template = FrameSchedule(
            kept=kept,
            sched=sched,
            nslots=_slot_span(sched, live_out_plan, flags_out_slot),
            live_out_plan=live_out_plan,
            flags_out_slot=flags_out_slot,
            exit_control_pos=exit_control_pos,
            mem_positions=tuple(
                (i, u) for i, u in enumerate(kept) if u.is_mem
            ),
            fire_addresses=[
                u.observed_address if u.is_mem else None for u in kept
            ],
            fetched_loads=sum(1 for u in kept if u.is_load),
            raw_loads=sum(1 for u in frame.dyn_uops if u.is_load),
        )
        frame.sched_template = template
        return template

    def adhoc_frame_schedule(self, uops: list[OptUop]) -> FrameSchedule:
        """Template for a bare OptUop list (frame blocks without a frame).

        Used for hand-built test blocks; carries no live-out commit plan
        (commit requires a frame with a buffer anyway).
        """
        kept = list(uops)
        sched = [self.opt_sched(u) for u in kept]
        return FrameSchedule(
            kept=kept,
            sched=sched,
            nslots=_slot_span(sched, (), None),
        )


def _slot_span(sched, live_out_plan, flags_out_slot) -> int:
    """Dense-list size covering every slot a frame schedule references."""
    top = -1 if flags_out_slot is None else flags_out_slot
    for entry in sched:
        if entry[6] > top:
            top = entry[6]
        flags_src = entry[3]
        if flags_src is not None and flags_src > top:
            top = flags_src
        for is_slot, key in entry[1]:
            if is_slot and key > top:
                top = key
    for _, slot in live_out_plan:
        if slot > top:
            top = slot
    return top + 1
