"""Branch prediction: gshare, BTB, and a return-address stack.

The three structures validate their own sizes (``ConfigError`` naming
the field) so direct construction is as safe as going through
:meth:`ProcessorConfig.validate`: a 0-bit history register, a
non-power-of-two BTB, or a 0-deep RAS is a configuration bug, not a
smaller predictor.
"""

from __future__ import annotations

from repro.timing.config import ConfigError, ProcessorConfig


def _require_power_of_two(value: int, field: str) -> None:
    if value < 1 or value & (value - 1):
        raise ConfigError(field, f"must be a power of two >= 1, got {value}")


class GsharePredictor:
    """Classic gshare: global history XOR pc indexes 2-bit counters."""

    def __init__(self, history_bits: int = 18) -> None:
        if history_bits < 1:
            raise ConfigError(
                "ghr_bits",
                f"must be >= 1 (0 degenerates gshare to one counter), "
                f"got {history_bits}",
            )
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        self._counters: dict[int, int] = {}  # lazily weakly-taken (2)
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters.get(self._index(pc), 2) >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, then train; returns True if the prediction was correct."""
        index = self._index(pc)
        counter = self._counters.get(index, 2)
        prediction = counter >= 2
        if taken and counter < 3:
            self._counters[index] = counter + 1
        elif not taken and counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._mask
        self.predictions += 1
        correct = prediction == taken
        if not correct:
            self.mispredictions += 1
        return correct


class BranchTargetBuffer:
    """Direct-mapped BTB storing the last target per branch site."""

    def __init__(self, entries: int = 4096) -> None:
        _require_power_of_two(entries, "btb_entries")
        self.entries = entries
        self._table: dict[int, tuple[int, int]] = {}  # index -> (tag, target)
        self.misses = 0
        self.lookups = 0

    def predict(self, pc: int) -> int | None:
        self.lookups += 1
        index = (pc >> 2) % self.entries
        entry = self._table.get(index)
        if entry is None or entry[0] != pc:
            self.misses += 1
            return None
        return entry[1]

    def update(self, pc: int, target: int) -> None:
        index = (pc >> 2) % self.entries
        self._table[index] = (pc, target)


class ReturnAddressStack:
    """Fixed-depth RAS; overflow wraps (oldest entry lost)."""

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ConfigError("ras_depth", f"must be >= 1, got {depth}")
        self.depth = depth
        self._stack: list[int] = []

    def push(self, address: int) -> None:
        self._stack.append(address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> int | None:
        if self._stack:
            return self._stack.pop()
        return None


class FrontEndPredictors:
    """Bundle of the front-end prediction structures."""

    def __init__(self, config: ProcessorConfig) -> None:
        self.gshare = GsharePredictor(config.ghr_bits)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.ras = ReturnAddressStack(config.ras_depth)
