"""Timing model: processor config, caches, predictors, pipeline."""

from repro.timing.caches import Cache, CacheHierarchy
from repro.timing.config import (
    CacheConfig,
    ConfigError,
    ProcessorConfig,
    default_config,
    large_icache_config,
)
from repro.timing.pipeline import (
    BINS,
    BranchEvent,
    FetchBlock,
    PipelineModel,
    SimResult,
)
from repro.timing.predictor import (
    BranchTargetBuffer,
    FrontEndPredictors,
    GsharePredictor,
    ReturnAddressStack,
)
from repro.timing.schedule import FrameSchedule, InstrDecode, ScheduleBuilder

__all__ = [
    "BINS",
    "BranchEvent",
    "BranchTargetBuffer",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "ConfigError",
    "FetchBlock",
    "FrameSchedule",
    "FrontEndPredictors",
    "GsharePredictor",
    "InstrDecode",
    "PipelineModel",
    "ProcessorConfig",
    "ReturnAddressStack",
    "ScheduleBuilder",
    "SimResult",
    "default_config",
    "large_icache_config",
]
