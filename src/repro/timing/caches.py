"""Set-associative cache models with true-LRU replacement."""

from __future__ import annotations

from repro.timing.config import CacheConfig


class Cache:
    """A single cache level.  ``access`` returns hit/miss and fills on miss."""

    def __init__(self, config: CacheConfig) -> None:
        # Structured geometry validation: associativity=0 used to die
        # with ZeroDivisionError here, and size_bytes=0 silently built a
        # 0-set cache that crashed at the first probe (`line % 0`).
        config.validate()
        self.config = config
        self.num_sets = config.size_bytes // (config.line_bytes * config.associativity)
        self._line_shift = config.line_bytes.bit_length() - 1
        # Per-set list of tags in LRU order (front = most recent).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def line_of(self, address: int) -> int:
        return address >> self._line_shift

    def _probe_fill(self, line: int) -> bool:
        """Look up one line, refresh LRU, allocate on miss; no counters."""
        ways = self._sets[line % self.num_sets]
        if line in ways:
            ways.remove(line)
            ways.insert(0, line)
            return True
        ways.insert(0, line)
        if len(ways) > self.config.associativity:
            ways.pop()
        return False

    def access(self, address: int) -> bool:
        """Access one byte address; True on hit.  Misses allocate."""
        if self._probe_fill(self.line_of(address)):
            self.hits += 1
            return True
        self.misses += 1
        return False

    def access_range(self, address: int, size: int) -> bool:
        """Access a byte range; True only if every line hits.

        Counts **one** hit or miss per call (a miss if any touched line
        misses) while still filling every touched line, so ``accesses``
        equals the number of access calls — multi-word transactions no
        longer inflate the hit/miss statistics.
        """
        first = self.line_of(address)
        last = self.line_of(address + max(size, 1) - 1)
        hit = True
        for line in range(first, last + 1):
            hit &= self._probe_fill(line)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class CacheHierarchy:
    """L1 + shared L2 + memory, returning total access latency."""

    def __init__(
        self, l1_config: CacheConfig, l2: Cache, memory_latency: int
    ) -> None:
        self.l1 = Cache(l1_config)
        self.l2 = l2
        self.memory_latency = memory_latency

    def access(self, address: int, size: int = 1) -> int:
        """Access and return the latency in cycles."""
        latency = self.l1.config.hit_latency
        if not self.l1.access_range(address, size):
            latency += self.l2.config.hit_latency
            if not self.l2.access_range(address, size):
                latency += self.memory_latency
        return latency
