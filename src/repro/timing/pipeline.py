"""The 8-wide pipeline timing model (paper §5.1.2, §5.3).

A scoreboard-style model of the paper's deeply pipelined 8-wide machine:

* fetch delivers up to 8 uops/cycle from the active source (ICache paths
  additionally decode at most 4 x86 instructions/cycle and break at taken
  branches; frame/trace-cache paths stream straight through — the fetch-
  bandwidth advantage that motivates rePLay);
* every uop issues after its sources are ready, no earlier than
  ``branch_resolution_depth`` cycles after fetch (modeling the deep
  front end), onto a free functional unit of its class;
* loads access the D-cache hierarchy; in-order retirement at 8/cycle
  bounds the 512-entry window, so long-latency misses back up into
  fetch stalls.

Each fetch-engine cycle is tallied into one of the paper's seven bins
(assert, mispredict, miss, stall, wait, frame, icache) exactly as in the
Figure 7/8 breakdowns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.uops.uop import Uop, UopOp, UReg
from repro.optimizer.optuop import DefRef, LiveIn, OptUop
from repro.timing.caches import Cache, CacheHierarchy
from repro.timing.config import ProcessorConfig
from repro.timing.predictor import FrontEndPredictors

#: Cycle-accounting bins, in the paper's priority order.
BINS = ("assert", "mispred", "miss", "stall", "wait", "frame", "icache")


@dataclass
class BranchEvent:
    """A predictable control transfer within an ICache/trace-cache block."""

    uop_index: int
    kind: str  # 'cond' | 'call' | 'ret' | 'jmp' | 'jmpi'
    pc: int
    taken: bool = True
    target: int = 0
    return_address: int = 0


@dataclass
class FetchBlock:
    """One unit of fetch handed to the timing model by a sequencer."""

    source: str  # 'icache' | 'frame' | 'tcache'
    uops: list  # dyn Uops (icache/tcache) or OptUops (frame)
    addresses: list  # per-uop dynamic memory address (None for non-mem)
    x86_count: int
    pc: int
    byte_start: int = 0
    byte_end: int = 0
    branch_events: list[BranchEvent] = field(default_factory=list)
    #: control transfers embedded in a frame: they train the predictors
    #: (keeping gshare history and the RAS consistent with the retired
    #: stream) but carry no penalty — inside a frame they are assertions.
    train_events: list[BranchEvent] = field(default_factory=list)
    fires: bool = False  # frame instance whose assertion/unsafe store fires
    frame: object | None = None


@dataclass
class SimResult:
    """Aggregate outcome of one simulation run."""

    cycles: int = 0
    x86_retired: int = 0
    uops_fetched: int = 0
    loads_executed: int = 0
    stores_executed: int = 0
    bins: dict[str, int] = field(default_factory=lambda: {b: 0 for b in BINS})
    frames_fetched: int = 0
    frames_fired: int = 0
    frame_x86_coverage: int = 0
    branch_mispredicts: int = 0
    #: scheduling-window occupancy, sampled once per fetch chunk.
    window_occupancy_sum: int = 0
    window_occupancy_samples: int = 0

    @property
    def window_occupancy_mean(self) -> float:
        """Mean in-flight uops at fetch time (512-entry window pressure)."""
        if not self.window_occupancy_samples:
            return 0.0
        return self.window_occupancy_sum / self.window_occupancy_samples

    @property
    def ipc_x86(self) -> float:
        """Retired x86 instructions per cycle (the paper's metric)."""
        if not self.cycles:
            return 0.0
        return self.x86_retired / self.cycles

    @property
    def uop_ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.uops_fetched / self.cycles

    @property
    def coverage(self) -> float:
        """Fraction of x86 instructions fetched from the frame/trace cache."""
        if not self.x86_retired:
            return 0.0
        return self.frame_x86_coverage / self.x86_retired


class PipelineModel:
    """Cycle-accounting simulator for one run."""

    #: extra cycles between detecting a firing assertion (at frame
    #: readiness, the paper's pessimistic model) and restarting fetch.
    RECOVERY_LATENCY = 5

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self.cycle = 0
        self.result = SimResult()
        self.predictors = FrontEndPredictors(config)
        l2 = Cache(config.l2)
        self.icache = CacheHierarchy(config.icache, l2, config.memory_latency)
        self.dcache = CacheHierarchy(config.dcache, l2, config.memory_latency)
        self._reg_ready: dict[int, int] = {}
        self._flags_ready = 0
        #: word-granular store-to-load dependence: a load cannot complete
        #: before the last overlapping store's data is available (the
        #: store-buffer bypass the paper calls out as expensive, §6.2).
        self._mem_ready: dict[int, int] = {}
        # Table 2: 4 load/store units with 4 read and 4 write D-cache
        # ports — loads and stores do not contend with each other.
        self._fu_caps = {
            "simple": config.simple_alus,
            "complex": config.complex_alus,
            "fpu": config.fpus,
            "load": config.load_store_units,
            "store": config.load_store_units,
        }
        self._fu_used: dict[str, dict[int, int]] = {k: {} for k in self._fu_caps}
        self._inflight: deque[int] = deque()  # retire times, non-decreasing
        self._retire_cycle = 0
        self._retire_count = 0
        self._last_retire = 0
        self._last_source: str | None = None

    # ------------------------------------------------------------- public

    def simulate(self, fetcher) -> SimResult:
        """Drive ``fetcher.next_block(cycle)`` until it returns None."""
        while True:
            block = fetcher.next_block(self.cycle)
            if block is None:
                break
            self._run_block(block)
        self.cycle = max(self.cycle, self._last_retire)
        self.result.cycles = self.cycle
        self.result.branch_mispredicts = self.predictors.gshare.mispredictions
        return self.result

    # ------------------------------------------------------------ fetch

    def _run_block(self, block: FetchBlock) -> None:
        self._switch_source(block.source)
        if block.source == "icache":
            self._fetch_lines(block)
        if block.source == "frame":
            self.result.frames_fetched += 1
        if block.fires:
            self._run_firing_frame(block)
            return
        bin_name = "frame" if block.source in ("frame", "tcache") else "icache"
        # Internal transfers precede the exit branch in program order, so
        # they train the predictors before the exit event is evaluated.
        for event in block.train_events:
            self._train_predictors(event)
        events = {e.uop_index: e for e in block.branch_events}
        width = self.config.fetch_width
        index = 0
        n = len(block.uops)
        frame_mode = block.source == "frame"
        slot_values: dict[int, int] = {}
        slot_flags: dict[int, int] = {}
        while index < n:
            chunk = min(width, n - index)
            self._wait_for_window(chunk)
            self.result.bins[bin_name] += 1
            fetch_cycle = self.cycle
            self.cycle += 1
            for offset in range(chunk):
                i = index + offset
                if frame_mode:
                    self._execute_opt_uop(
                        block.uops[i],
                        block.addresses[i],
                        fetch_cycle,
                        slot_values,
                        slot_flags,
                    )
                else:
                    complete = self._execute_dyn_uop(
                        block.uops[i], block.addresses[i], fetch_cycle
                    )
                    event = events.get(i)
                    if event is not None:
                        self._handle_branch(event, complete)
            index += chunk
        if frame_mode and block.frame is not None:
            self._commit_frame_live_outs(block.frame, slot_values, slot_flags)
        if block.source in ("frame", "tcache"):
            self.result.frame_x86_coverage += block.x86_count
        self.result.uops_fetched += len(block.uops)
        self.result.x86_retired += block.x86_count

    def _switch_source(self, source: str) -> None:
        if source == "tcache":
            source = "frame"  # trace cache occupies the same slot as FCache
        if self._last_source is not None and source != self._last_source:
            self.result.bins["wait"] += self.config.cache_switch_penalty
            self.cycle += self.config.cache_switch_penalty
        self._last_source = source

    def _fetch_lines(self, block: FetchBlock) -> None:
        """Model instruction-cache misses for the block's byte footprint."""
        size = max(1, block.byte_end - block.byte_start)
        latency = self.icache.access(block.byte_start, size)
        penalty = latency - self.config.icache.hit_latency
        if penalty > 0:
            self.result.bins["miss"] += penalty
            self.cycle += penalty

    def _wait_for_window(self, incoming: int) -> None:
        """Stall fetch until the scheduling window has room."""
        inflight = self._inflight
        while inflight and inflight[0] <= self.cycle:
            inflight.popleft()
        while len(inflight) + incoming > self.config.window_size:
            self.result.bins["stall"] += 1
            self.cycle += 1
            while inflight and inflight[0] <= self.cycle:
                inflight.popleft()
        self.result.window_occupancy_sum += len(inflight)
        self.result.window_occupancy_samples += 1

    # ------------------------------------------------------------ execute

    def _fu_class(self, op: UopOp) -> str:
        if op is UopOp.LOAD:
            return "load"
        if op is UopOp.STORE:
            return "store"
        if op in (UopOp.MUL, UopOp.DIVQ, UopOp.DIVR):
            return "complex"
        return "simple"

    def _latency(self, op: UopOp, address, size: int) -> int:
        if op is UopOp.LOAD:
            self.result.loads_executed += 1
            if address is not None:
                return self.dcache.access(address, size)
            return self.config.dcache.hit_latency
        if op is UopOp.STORE:
            self.result.stores_executed += 1
            if address is not None:
                self.dcache.access(address, size)  # allocate/fill
            return 1
        if op is UopOp.MUL:
            return self.config.mul_latency
        if op in (UopOp.DIVQ, UopOp.DIVR):
            return self.config.div_latency
        return 1

    def _mem_words(self, address: int, size: int):
        first = address >> 2
        last = (address + max(size, 1) - 1) >> 2
        return range(first, last + 1)

    def _load_store_dependence(self, address, size: int, ready: int) -> int:
        """Earliest time an overlapping store's data can be bypassed."""
        if address is None or not self._mem_ready:
            return ready
        mem_ready = self._mem_ready
        for word in self._mem_words(address, size):
            t = mem_ready.get(word, 0)
            if t > ready:
                ready = t
        return ready

    def _record_store(self, address, size: int, complete: int) -> None:
        if address is None:
            return
        mem_ready = self._mem_ready
        for word in self._mem_words(address, size):
            mem_ready[word] = complete
        if len(mem_ready) > (1 << 16):
            horizon = self.cycle
            self._mem_ready = {
                k: v for k, v in mem_ready.items() if v > horizon
            }

    def _issue(self, fu: str, ready: int) -> int:
        used = self._fu_used[fu]
        cap = self._fu_caps[fu]
        t = ready
        while used.get(t, 0) >= cap:
            t += 1
        used[t] = used.get(t, 0) + 1
        if len(used) > 16384:
            horizon = self.cycle
            self._fu_used[fu] = {k: v for k, v in used.items() if k >= horizon}
        return t

    def _retire(self, complete: int) -> None:
        time = max(complete + 1, self._retire_cycle)
        if time > self._retire_cycle:
            self._retire_cycle = time
            self._retire_count = 1
        else:
            self._retire_count += 1
            if self._retire_count > self.config.retire_width:
                self._retire_cycle += 1
                self._retire_count = 1
                time = self._retire_cycle
        self._inflight.append(time)
        if time > self._last_retire:
            self._last_retire = time

    def _execute_dyn_uop(self, uop: Uop, address, fetch_cycle: int) -> int:
        """Schedule one pre-rename uop; returns its completion cycle."""
        ready = fetch_cycle + self.config.branch_resolution_depth
        reg_ready = self._reg_ready
        for src in (uop.src_a, uop.src_b, uop.src_data):
            if src is not None:
                t = reg_ready.get(src, 0)
                if t > ready:
                    ready = t
        if (uop.cond is not None and uop.op in (UopOp.BR, UopOp.ASSERT)) or (
            uop.preserves_cf
        ):
            if self._flags_ready > ready:
                ready = self._flags_ready
        if uop.op is UopOp.LOAD:
            ready = self._load_store_dependence(address, uop.size, ready)
        issue = self._issue(self._fu_class(uop.op), ready)
        complete = issue + self._latency(uop.op, address, uop.size)
        if uop.op is UopOp.STORE:
            self._record_store(address, uop.size, complete)
        if uop.dst is not None:
            reg_ready[uop.dst] = complete
        if uop.writes_flags:
            self._flags_ready = complete
        self._retire(complete)
        return complete

    def _execute_opt_uop(
        self,
        uop: OptUop,
        address,
        fetch_cycle: int,
        slot_values: dict[int, int],
        slot_flags: dict[int, int],
    ) -> int:
        """Schedule one remapped frame uop; returns its completion cycle."""
        ready = fetch_cycle + self.config.branch_resolution_depth
        for _, operand in uop.operands():
            if isinstance(operand, DefRef):
                t = slot_values.get(operand.slot, 0)
            else:
                t = self._reg_ready.get(operand.reg, 0)
            if t > ready:
                ready = t
        if uop.reads_flags:
            if uop.flags_src is None:
                t = self._flags_ready
            else:
                t = slot_flags.get(uop.flags_src, 0)
            if t > ready:
                ready = t
        if uop.op is UopOp.LOAD:
            ready = self._load_store_dependence(address, uop.size, ready)
        issue = self._issue(self._fu_class(uop.op), ready)
        complete = issue + self._latency(uop.op, address, uop.size)
        if uop.op is UopOp.STORE:
            self._record_store(address, uop.size, complete)
        slot_values[uop.slot] = complete
        if uop.writes_flags:
            slot_flags[uop.slot] = complete
        self._retire(complete)
        return complete

    def _commit_frame_live_outs(
        self, frame, slot_values: dict[int, int], slot_flags: dict[int, int]
    ) -> None:
        """Propagate frame-exit register availability to the outer map."""
        buffer = frame.buffer
        if buffer is None:
            return
        for reg, operand in buffer.live_out.items():
            if isinstance(operand, DefRef):
                self._reg_ready[reg] = slot_values.get(operand.slot, 0)
            # LiveIn binding: availability time unchanged.
        if buffer.flags_live_out_slot is not None:
            self._flags_ready = slot_flags.get(
                buffer.flags_live_out_slot, self._flags_ready
            )

    # ------------------------------------------------------------ control

    def _handle_branch(self, event: BranchEvent, complete: int) -> None:
        predictors = self.predictors
        mispredicted = False
        if event.kind == "cond":
            correct = predictors.gshare.update(event.pc, event.taken)
            if correct and event.taken:
                # Direction right; the target still needs a BTB entry.
                predicted_target = predictors.btb.predict(event.pc)
                if predicted_target != event.target:
                    mispredicted = True
            elif not correct:
                mispredicted = True
            predictors.btb.update(event.pc, event.target)
        elif event.kind == "call":
            # Direct call: target encoded in the instruction, next-line
            # prediction corrected at decode; only the RAS is affected.
            predictors.ras.push(event.return_address)
        elif event.kind == "callind":
            predictors.ras.push(event.return_address)
            predicted_target = predictors.btb.predict(event.pc)
            if predicted_target != event.target:
                mispredicted = True
            predictors.btb.update(event.pc, event.target)
        elif event.kind == "ret":
            predicted = predictors.ras.pop()
            if predicted != event.target:
                mispredicted = True
        elif event.kind == "jmpi":
            predicted_target = predictors.btb.predict(event.pc)
            if predicted_target != event.target:
                mispredicted = True
            predictors.btb.update(event.pc, event.target)
        # direct 'jmp': next-line prediction, no penalty modeled
        if mispredicted:
            redirect = complete + 1
            if redirect > self.cycle:
                self.result.bins["mispred"] += redirect - self.cycle
                self.cycle = redirect

    def _train_predictors(self, event: BranchEvent) -> None:
        """Penalty-free predictor update for frame-internal transfers."""
        predictors = self.predictors
        if event.kind == "cond":
            predictors.gshare.update(event.pc, event.taken)
            predictors.btb.update(event.pc, event.target)
        elif event.kind in ("call", "callind"):
            predictors.ras.push(event.return_address)
            if event.kind == "callind":
                predictors.btb.update(event.pc, event.target)
        elif event.kind == "ret":
            predictors.ras.pop()
        elif event.kind == "jmpi":
            predictors.btb.update(event.pc, event.target)

    # ------------------------------------------------------------ firing

    def _run_firing_frame(self, block: FetchBlock) -> None:
        """A fetched frame whose assertion (or unsafe store) fires.

        All cycles from the frame's fetch until recovery are Assert cycles
        (paper §6.1); the paper's pessimistic model initiates recovery
        only once the whole frame is ready to retire.  The frame's state
        is rolled back, so no architectural availability times change and
        no x86 instructions retire; the sequencer re-issues the region
        from the ICache next.
        """
        self.result.frames_fired += 1
        saved_regs = dict(self._reg_ready)
        saved_flags = self._flags_ready
        slot_values: dict[int, int] = {}
        slot_flags: dict[int, int] = {}
        width = self.config.fetch_width
        last_complete = self.cycle
        index = 0
        n = len(block.uops)
        while index < n:
            chunk = min(width, n - index)
            self._wait_for_window(chunk)
            self.result.bins["assert"] += 1
            fetch_cycle = self.cycle
            self.cycle += 1
            for offset in range(chunk):
                uop = block.uops[index + offset]
                complete = self._execute_opt_uop(
                    uop,
                    block.addresses[index + offset],
                    fetch_cycle,
                    slot_values,
                    slot_flags,
                )
                if complete > last_complete:
                    last_complete = complete
            index += chunk
        recovery = last_complete + self.RECOVERY_LATENCY
        if recovery > self.cycle:
            self.result.bins["assert"] += recovery - self.cycle
            self.cycle = recovery
        # Roll back: the frame's register effects are squashed.  (The
        # squashed uops still drained through the window, so retirement
        # bookkeeping is left alone.)
        self._reg_ready = saved_regs
        self._flags_ready = saved_flags
        self.result.uops_fetched += n
