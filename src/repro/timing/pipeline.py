"""The 8-wide pipeline timing model (paper §5.1.2, §5.3).

A scoreboard-style model of the paper's deeply pipelined 8-wide machine:

* fetch delivers up to 8 uops/cycle from the active source (ICache paths
  additionally decode at most 4 x86 instructions/cycle and break at taken
  branches; frame/trace-cache paths stream straight through — the fetch-
  bandwidth advantage that motivates rePLay);
* every uop issues after its sources are ready, no earlier than
  ``branch_resolution_depth`` cycles after fetch (modeling the deep
  front end), onto a free functional unit of its class;
* loads access the D-cache hierarchy; in-order retirement at 8/cycle
  bounds the 512-entry window, so long-latency misses back up into
  fetch stalls.

Each fetch-engine cycle is tallied into one of the paper's seven bins
(assert, mispredict, miss, stall, wait, frame, icache) exactly as in the
Figure 7/8 breakdowns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.uops.uop import Uop, UopOp, UReg
from repro.optimizer.optuop import DefRef, LiveIn, OptUop
from repro.timing.caches import Cache, CacheHierarchy
from repro.timing.config import ProcessorConfig
from repro.timing.predictor import FrontEndPredictors
from repro.timing.schedule import (
    KIND_LOAD,
    KIND_STORE,
    FrameSchedule,
    ScheduleBuilder,
)

#: Cycle-accounting bins, in the paper's priority order.
BINS = ("assert", "mispred", "miss", "stall", "wait", "frame", "icache")

#: Shared empty event map for the (common) branch-free block.
_NO_EVENTS: dict[int, "BranchEvent"] = {}


@dataclass
class BranchEvent:
    """A predictable control transfer within an ICache/trace-cache block."""

    uop_index: int
    kind: str  # 'cond' | 'call' | 'ret' | 'jmp' | 'jmpi'
    pc: int
    taken: bool = True
    target: int = 0
    return_address: int = 0


@dataclass
class FetchBlock:
    """One unit of fetch handed to the timing model by a sequencer."""

    source: str  # 'icache' | 'frame' | 'tcache'
    uops: list  # dyn Uops (icache/tcache) or OptUops (frame)
    addresses: list  # per-uop dynamic memory address (None for non-mem)
    x86_count: int
    pc: int
    byte_start: int = 0
    byte_end: int = 0
    branch_events: list[BranchEvent] = field(default_factory=list)
    #: control transfers embedded in a frame: they train the predictors
    #: (keeping gshare history and the RAS consistent with the retired
    #: stream) but carry no penalty — inside a frame they are assertions.
    train_events: list[BranchEvent] = field(default_factory=list)
    fires: bool = False  # frame instance whose assertion/unsafe store fires
    frame: object | None = None
    #: static schedule template: a list of dyn schedule tuples (icache /
    #: tcache blocks) or a :class:`repro.timing.schedule.FrameSchedule`
    #: (frame blocks).  ``None`` = the model derives one on the fly.
    sched: object | None = None


@dataclass
class SimResult:
    """Aggregate outcome of one simulation run."""

    cycles: int = 0
    x86_retired: int = 0
    uops_fetched: int = 0
    loads_executed: int = 0
    stores_executed: int = 0
    bins: dict[str, int] = field(default_factory=lambda: {b: 0 for b in BINS})
    frames_fetched: int = 0
    frames_fired: int = 0
    frame_x86_coverage: int = 0
    branch_mispredicts: int = 0
    #: scheduling-window occupancy, sampled once per fetch chunk.
    window_occupancy_sum: int = 0
    window_occupancy_samples: int = 0

    @property
    def window_occupancy_mean(self) -> float:
        """Mean in-flight uops at fetch time (512-entry window pressure)."""
        if not self.window_occupancy_samples:
            return 0.0
        return self.window_occupancy_sum / self.window_occupancy_samples

    @property
    def ipc_x86(self) -> float:
        """Retired x86 instructions per cycle (the paper's metric)."""
        if not self.cycles:
            return 0.0
        return self.x86_retired / self.cycles

    @property
    def uop_ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.uops_fetched / self.cycles

    @property
    def coverage(self) -> float:
        """Fraction of x86 instructions fetched from the frame/trace cache."""
        if not self.x86_retired:
            return 0.0
        return self.frame_x86_coverage / self.x86_retired


class PipelineModel:
    """Cycle-accounting simulator for one run."""

    #: extra cycles between detecting a firing assertion (at frame
    #: readiness, the paper's pessimistic model) and restarting fetch.
    RECOVERY_LATENCY = 5

    def __init__(self, config: ProcessorConfig, scheduling: str = "template") -> None:
        if scheduling not in ("template", "reference"):
            raise ValueError(f"unknown scheduling mode: {scheduling!r}")
        # Every simulation entry point funnels through here, so this is
        # where degenerate geometries die with a field-named ConfigError
        # instead of a mid-run crash or an infinite issue loop.
        config.validate()
        self.config = config
        #: 'template' consumes precomputed schedule tuples (fast path);
        #: 'reference' walks Uop/OptUop objects (original implementation).
        #: Both must produce identical SimResults — see DESIGN.md §11 and
        #: tests/timing/test_schedule_ab.py.
        self.scheduling = scheduling
        self._builder = ScheduleBuilder(config)
        self.cycle = 0
        self.result = SimResult()
        self.predictors = FrontEndPredictors(config)
        l2 = Cache(config.l2)
        self.icache = CacheHierarchy(config.icache, l2, config.memory_latency)
        self.dcache = CacheHierarchy(config.dcache, l2, config.memory_latency)
        self._reg_ready: dict[int, int] = {}
        self._flags_ready = 0
        #: word-granular store-to-load dependence: a load cannot complete
        #: before the last overlapping store's data is available (the
        #: store-buffer bypass the paper calls out as expensive, §6.2).
        self._mem_ready: dict[int, int] = {}
        # Table 2: 4 load/store units with 4 read and 4 write D-cache
        # ports — loads and stores do not contend with each other.
        self._fu_caps = {
            "simple": config.simple_alus,
            "complex": config.complex_alus,
            "fpu": config.fpus,
            "load": config.load_store_units,
            "store": config.load_store_units,
        }
        self._fu_used: dict[str, dict[int, int]] = {k: {} for k in self._fu_caps}
        self._inflight: deque[int] = deque()  # retire times, non-decreasing
        self._retire_cycle = 0
        self._retire_count = 0
        self._last_retire = 0
        self._last_source: str | None = None

    # ------------------------------------------------------------- public

    def simulate(self, fetcher) -> SimResult:
        """Drive ``fetcher.next_block(cycle)`` until it returns None."""
        while True:
            block = fetcher.next_block(self.cycle)
            if block is None:
                break
            self._run_block(block)
        self.cycle = max(self.cycle, self._last_retire)
        self.result.cycles = self.cycle
        self.result.branch_mispredicts = self.predictors.gshare.mispredictions
        return self.result

    # ------------------------------------------------------------ fetch

    def _run_block(self, block: FetchBlock) -> None:
        self._switch_source(block.source)
        if block.source == "icache":
            self._fetch_lines(block)
        if block.source == "frame":
            self.result.frames_fetched += 1
        if block.fires:
            self._run_firing_frame(block)
            return
        # Internal transfers precede the exit branch in program order, so
        # they train the predictors before the exit event is evaluated.
        for event in block.train_events:
            self._train_predictors(event)
        if block.source == "frame":
            self._run_frame_block(block)
        else:
            bin_name = "frame" if block.source == "tcache" else "icache"
            self._run_line_block(block, bin_name)
        if block.source in ("frame", "tcache"):
            self.result.frame_x86_coverage += block.x86_count
        self.result.uops_fetched += len(block.uops)
        self.result.x86_retired += block.x86_count

    def _event_map(self, block: FetchBlock) -> dict[int, BranchEvent]:
        """Index branch events by uop position, rejecting collisions.

        A duplicate ``uop_index`` would make one event silently shadow
        another (dict overwrite), so a mis-built block now fails loudly.
        """
        if not block.branch_events:
            return _NO_EVENTS
        events: dict[int, BranchEvent] = {}
        for event in block.branch_events:
            if event.uop_index in events:
                raise ValueError(
                    f"duplicate branch event at uop index {event.uop_index} "
                    f"in block @ {block.pc:#x}"
                )
            events[event.uop_index] = event
        return events

    def _run_line_block(self, block: FetchBlock, bin_name: str) -> None:
        """Fetch/execute an ICache or trace-cache block (dyn uops)."""
        events = self._event_map(block)
        width = self.config.fetch_width
        uops = block.uops
        addresses = block.addresses
        n = len(uops)
        bins = self.result.bins
        index = 0
        if self.scheduling == "template":
            depth = self.config.branch_resolution_depth
            sched = block.sched
            if sched is None:
                builder = self._builder
                sched = [builder.dyn_sched(u) for u in uops]
            execute = self._execute_dyn_sched
            while index < n:
                chunk = min(width, n - index)
                self._wait_for_window(chunk)
                bins[bin_name] += 1
                base_ready = self.cycle + depth
                self.cycle += 1
                for i in range(index, index + chunk):
                    complete = execute(sched[i], addresses[i], base_ready)
                    event = events.get(i)
                    if event is not None:
                        self._handle_branch(event, complete)
                index += chunk
        else:
            while index < n:
                chunk = min(width, n - index)
                self._wait_for_window(chunk)
                bins[bin_name] += 1
                fetch_cycle = self.cycle
                self.cycle += 1
                for i in range(index, index + chunk):
                    complete = self._execute_dyn_uop(
                        uops[i], addresses[i], fetch_cycle
                    )
                    event = events.get(i)
                    if event is not None:
                        self._handle_branch(event, complete)
                index += chunk

    def _frame_template(self, block: FetchBlock) -> FrameSchedule:
        """The block's FrameSchedule, building one if the sequencer didn't."""
        template = block.sched
        if isinstance(template, FrameSchedule) and len(template.sched) == len(
            block.uops
        ):
            return template
        frame = block.frame
        if frame is not None and getattr(frame, "buffer", None) is not None:
            template = self._builder.frame_schedule(frame)
            if len(template.sched) == len(block.uops):
                return template
        return self._builder.adhoc_frame_schedule(block.uops)

    def _run_frame_block(self, block: FetchBlock) -> None:
        """Fetch/execute a committing frame block (opt uops).

        Frame-internal transfers are assertions: ``branch_events`` carry
        no penalty here (only ``train_events`` touch the predictors), in
        both scheduling modes.
        """
        width = self.config.fetch_width
        uops = block.uops
        addresses = block.addresses
        n = len(uops)
        bins = self.result.bins
        index = 0
        if self.scheduling == "template":
            depth = self.config.branch_resolution_depth
            template = self._frame_template(block)
            sched = template.sched
            slot_values = [0] * template.nslots
            slot_flags = [0] * template.nslots
            execute = self._execute_opt_sched
            while index < n:
                chunk = min(width, n - index)
                self._wait_for_window(chunk)
                bins["frame"] += 1
                base_ready = self.cycle + depth
                self.cycle += 1
                for i in range(index, index + chunk):
                    execute(sched[i], addresses[i], base_ready, slot_values, slot_flags)
                index += chunk
            if block.frame is not None:
                reg_ready = self._reg_ready
                for reg, slot in template.live_out_plan:
                    reg_ready[reg] = slot_values[slot]
                if template.flags_out_slot is not None:
                    self._flags_ready = slot_flags[template.flags_out_slot]
        else:
            slot_values_map: dict[int, int] = {}
            slot_flags_map: dict[int, int] = {}
            while index < n:
                chunk = min(width, n - index)
                self._wait_for_window(chunk)
                bins["frame"] += 1
                fetch_cycle = self.cycle
                self.cycle += 1
                for i in range(index, index + chunk):
                    self._execute_opt_uop(
                        uops[i],
                        addresses[i],
                        fetch_cycle,
                        slot_values_map,
                        slot_flags_map,
                    )
                index += chunk
            if block.frame is not None:
                self._commit_frame_live_outs(
                    block.frame, slot_values_map, slot_flags_map
                )

    def _switch_source(self, source: str) -> None:
        if source == "tcache":
            source = "frame"  # trace cache occupies the same slot as FCache
        if self._last_source is not None and source != self._last_source:
            self.result.bins["wait"] += self.config.cache_switch_penalty
            self.cycle += self.config.cache_switch_penalty
        self._last_source = source

    def _fetch_lines(self, block: FetchBlock) -> None:
        """Model instruction-cache misses for the block's byte footprint."""
        size = max(1, block.byte_end - block.byte_start)
        latency = self.icache.access(block.byte_start, size)
        penalty = latency - self.config.icache.hit_latency
        if penalty > 0:
            self.result.bins["miss"] += penalty
            self.cycle += penalty

    def _wait_for_window(self, incoming: int) -> None:
        """Stall fetch until the scheduling window has room."""
        inflight = self._inflight
        while inflight and inflight[0] <= self.cycle:
            inflight.popleft()
        while len(inflight) + incoming > self.config.window_size:
            self.result.bins["stall"] += 1
            self.cycle += 1
            while inflight and inflight[0] <= self.cycle:
                inflight.popleft()
        self.result.window_occupancy_sum += len(inflight)
        self.result.window_occupancy_samples += 1

    # ------------------------------------------------------------ execute

    def _fu_class(self, op: UopOp) -> str:
        if op is UopOp.LOAD:
            return "load"
        if op is UopOp.STORE:
            return "store"
        if op in (UopOp.MUL, UopOp.DIVQ, UopOp.DIVR):
            return "complex"
        return "simple"

    def _latency(self, op: UopOp, address, size: int) -> int:
        if op is UopOp.LOAD:
            self.result.loads_executed += 1
            if address is not None:
                return self.dcache.access(address, size)
            return self.config.dcache.hit_latency
        if op is UopOp.STORE:
            self.result.stores_executed += 1
            if address is not None:
                self.dcache.access(address, size)  # allocate/fill
            return 1
        if op is UopOp.MUL:
            return self.config.mul_latency
        if op in (UopOp.DIVQ, UopOp.DIVR):
            return self.config.div_latency
        return 1

    def _mem_words(self, address: int, size: int):
        first = address >> 2
        last = (address + max(size, 1) - 1) >> 2
        return range(first, last + 1)

    def _load_store_dependence(self, address, size: int, ready: int) -> int:
        """Earliest time an overlapping store's data can be bypassed."""
        if address is None or not self._mem_ready:
            return ready
        mem_ready = self._mem_ready
        for word in self._mem_words(address, size):
            t = mem_ready.get(word, 0)
            if t > ready:
                ready = t
        return ready

    def _record_store(self, address, size: int, complete: int) -> None:
        if address is None:
            return
        mem_ready = self._mem_ready
        for word in self._mem_words(address, size):
            mem_ready[word] = complete
        if len(mem_ready) > (1 << 16):
            horizon = self.cycle
            self._mem_ready = {
                k: v for k, v in mem_ready.items() if v > horizon
            }

    def _issue(self, fu: str, ready: int) -> int:
        used = self._fu_used[fu]
        cap = self._fu_caps[fu]
        t = ready
        while used.get(t, 0) >= cap:
            t += 1
        used[t] = used.get(t, 0) + 1
        if len(used) > 16384:
            horizon = self.cycle
            self._fu_used[fu] = {k: v for k, v in used.items() if k >= horizon}
        return t

    def _retire(self, complete: int) -> None:
        time = max(complete + 1, self._retire_cycle)
        if time > self._retire_cycle:
            self._retire_cycle = time
            self._retire_count = 1
        else:
            self._retire_count += 1
            if self._retire_count > self.config.retire_width:
                self._retire_cycle += 1
                self._retire_count = 1
                time = self._retire_cycle
        self._inflight.append(time)
        if time > self._last_retire:
            self._last_retire = time

    def _execute_dyn_uop(self, uop: Uop, address, fetch_cycle: int) -> int:
        """Schedule one pre-rename uop; returns its completion cycle."""
        ready = fetch_cycle + self.config.branch_resolution_depth
        reg_ready = self._reg_ready
        for src in (uop.src_a, uop.src_b, uop.src_data):
            if src is not None:
                t = reg_ready.get(src, 0)
                if t > ready:
                    ready = t
        # Shared predicate (repro.uops.uop.uop_reads_flags): conditional
        # control, CF-preserving ops, *and* flag-writing shifts whose flag
        # update may be suppressed (the flags-dependence asymmetry fix —
        # the old inline condition missed the shift case, so the ICache
        # path under-serialized flag chains relative to the frame path).
        if uop.reads_flags:
            if self._flags_ready > ready:
                ready = self._flags_ready
        if uop.op is UopOp.LOAD:
            ready = self._load_store_dependence(address, uop.size, ready)
        issue = self._issue(self._fu_class(uop.op), ready)
        complete = issue + self._latency(uop.op, address, uop.size)
        if uop.op is UopOp.STORE:
            self._record_store(address, uop.size, complete)
        if uop.dst is not None:
            reg_ready[uop.dst] = complete
        if uop.writes_flags:
            self._flags_ready = complete
        self._retire(complete)
        return complete

    def _execute_opt_uop(
        self,
        uop: OptUop,
        address,
        fetch_cycle: int,
        slot_values: dict[int, int],
        slot_flags: dict[int, int],
    ) -> int:
        """Schedule one remapped frame uop; returns its completion cycle."""
        ready = fetch_cycle + self.config.branch_resolution_depth
        for _, operand in uop.operands():
            if isinstance(operand, DefRef):
                t = slot_values.get(operand.slot, 0)
            else:
                t = self._reg_ready.get(operand.reg, 0)
            if t > ready:
                ready = t
        if uop.reads_flags:
            if uop.flags_src is None:
                t = self._flags_ready
            else:
                t = slot_flags.get(uop.flags_src, 0)
            if t > ready:
                ready = t
        if uop.op is UopOp.LOAD:
            ready = self._load_store_dependence(address, uop.size, ready)
        issue = self._issue(self._fu_class(uop.op), ready)
        complete = issue + self._latency(uop.op, address, uop.size)
        if uop.op is UopOp.STORE:
            self._record_store(address, uop.size, complete)
        slot_values[uop.slot] = complete
        if uop.writes_flags:
            slot_flags[uop.slot] = complete
        self._retire(complete)
        return complete

    # Template-scheduling twins of the two methods above: consume flat
    # schedule tuples (repro.timing.schedule) instead of uop objects and
    # dense slot lists instead of dicts.  Must stay cycle-identical.

    def _execute_dyn_sched(self, sched: tuple, address, base_ready: int) -> int:
        """Schedule one pre-rename uop from its schedule tuple."""
        fu, srcs, rflags, kind, latency, dst, wflags, size = sched
        ready = base_ready
        reg_ready = self._reg_ready
        for src in srcs:
            t = reg_ready.get(src, 0)
            if t > ready:
                ready = t
        if rflags and self._flags_ready > ready:
            ready = self._flags_ready
        if kind == KIND_LOAD:
            ready = self._load_store_dependence(address, size, ready)
            issue = self._issue(fu, ready)
            self.result.loads_executed += 1
            if address is not None:
                complete = issue + self.dcache.access(address, size)
            else:
                complete = issue + self.config.dcache.hit_latency
        elif kind == KIND_STORE:
            issue = self._issue(fu, ready)
            self.result.stores_executed += 1
            if address is not None:
                self.dcache.access(address, size)  # allocate/fill
            complete = issue + 1
            self._record_store(address, size, complete)
        else:
            issue = self._issue(fu, ready)
            complete = issue + latency
        if dst is not None:
            reg_ready[dst] = complete
        if wflags:
            self._flags_ready = complete
        self._retire(complete)
        return complete

    def _execute_opt_sched(
        self,
        sched: tuple,
        address,
        base_ready: int,
        slot_values: list[int],
        slot_flags: list[int],
    ) -> int:
        """Schedule one remapped frame uop from its schedule tuple."""
        fu, deps, rflags, flags_src, kind, latency, slot, wflags, size = sched
        ready = base_ready
        reg_ready = self._reg_ready
        for is_slot, key in deps:
            t = slot_values[key] if is_slot else reg_ready.get(key, 0)
            if t > ready:
                ready = t
        if rflags:
            t = self._flags_ready if flags_src is None else slot_flags[flags_src]
            if t > ready:
                ready = t
        if kind == KIND_LOAD:
            ready = self._load_store_dependence(address, size, ready)
            issue = self._issue(fu, ready)
            self.result.loads_executed += 1
            if address is not None:
                complete = issue + self.dcache.access(address, size)
            else:
                complete = issue + self.config.dcache.hit_latency
        elif kind == KIND_STORE:
            issue = self._issue(fu, ready)
            self.result.stores_executed += 1
            if address is not None:
                self.dcache.access(address, size)  # allocate/fill
            complete = issue + 1
            self._record_store(address, size, complete)
        else:
            issue = self._issue(fu, ready)
            complete = issue + latency
        slot_values[slot] = complete
        if wflags:
            slot_flags[slot] = complete
        self._retire(complete)
        return complete

    def _commit_frame_live_outs(
        self, frame, slot_values: dict[int, int], slot_flags: dict[int, int]
    ) -> None:
        """Propagate frame-exit register availability to the outer map."""
        buffer = frame.buffer
        if buffer is None:
            return
        for reg, operand in buffer.live_out.items():
            if isinstance(operand, DefRef):
                self._reg_ready[reg] = slot_values.get(operand.slot, 0)
            # LiveIn binding: availability time unchanged.
        if buffer.flags_live_out_slot is not None:
            self._flags_ready = slot_flags.get(
                buffer.flags_live_out_slot, self._flags_ready
            )

    # ------------------------------------------------------------ control

    def _handle_branch(self, event: BranchEvent, complete: int) -> None:
        predictors = self.predictors
        mispredicted = False
        if event.kind == "cond":
            correct = predictors.gshare.update(event.pc, event.taken)
            if correct and event.taken:
                # Direction right; the target still needs a BTB entry.
                predicted_target = predictors.btb.predict(event.pc)
                if predicted_target != event.target:
                    mispredicted = True
            elif not correct:
                mispredicted = True
            predictors.btb.update(event.pc, event.target)
        elif event.kind == "call":
            # Direct call: target encoded in the instruction, next-line
            # prediction corrected at decode; only the RAS is affected.
            predictors.ras.push(event.return_address)
        elif event.kind == "callind":
            predictors.ras.push(event.return_address)
            predicted_target = predictors.btb.predict(event.pc)
            if predicted_target != event.target:
                mispredicted = True
            predictors.btb.update(event.pc, event.target)
        elif event.kind == "ret":
            predicted = predictors.ras.pop()
            if predicted != event.target:
                mispredicted = True
        elif event.kind == "jmpi":
            predicted_target = predictors.btb.predict(event.pc)
            if predicted_target != event.target:
                mispredicted = True
            predictors.btb.update(event.pc, event.target)
        # direct 'jmp': next-line prediction, no penalty modeled
        if mispredicted:
            redirect = complete + 1
            if redirect > self.cycle:
                self.result.bins["mispred"] += redirect - self.cycle
                self.cycle = redirect

    def _train_predictors(self, event: BranchEvent) -> None:
        """Penalty-free predictor update for frame-internal transfers."""
        predictors = self.predictors
        if event.kind == "cond":
            predictors.gshare.update(event.pc, event.taken)
            predictors.btb.update(event.pc, event.target)
        elif event.kind in ("call", "callind"):
            predictors.ras.push(event.return_address)
            if event.kind == "callind":
                predictors.btb.update(event.pc, event.target)
        elif event.kind == "ret":
            predictors.ras.pop()
        elif event.kind == "jmpi":
            predictors.btb.update(event.pc, event.target)

    # ------------------------------------------------------------ firing

    def _run_firing_frame(self, block: FetchBlock) -> None:
        """A fetched frame whose assertion (or unsafe store) fires.

        All cycles from the frame's fetch until recovery are Assert cycles
        (paper §6.1); the paper's pessimistic model initiates recovery
        only once the whole frame is ready to retire.  The frame's state
        is rolled back, so no architectural availability times change and
        no x86 instructions retire; the sequencer re-issues the region
        from the ICache next.
        """
        self.result.frames_fired += 1
        saved_regs = dict(self._reg_ready)
        saved_flags = self._flags_ready
        saved_mem = self._store_word_snapshot(block)
        width = self.config.fetch_width
        uops = block.uops
        addresses = block.addresses
        n = len(uops)
        bins = self.result.bins
        last_complete = self.cycle
        index = 0
        if self.scheduling == "template":
            depth = self.config.branch_resolution_depth
            template = self._frame_template(block)
            sched = template.sched
            slot_values = [0] * template.nslots
            slot_flags = [0] * template.nslots
            while index < n:
                chunk = min(width, n - index)
                self._wait_for_window(chunk)
                bins["assert"] += 1
                base_ready = self.cycle + depth
                self.cycle += 1
                for i in range(index, index + chunk):
                    complete = self._execute_opt_sched(
                        sched[i], addresses[i], base_ready, slot_values, slot_flags
                    )
                    if complete > last_complete:
                        last_complete = complete
                index += chunk
        else:
            slot_values_map: dict[int, int] = {}
            slot_flags_map: dict[int, int] = {}
            while index < n:
                chunk = min(width, n - index)
                self._wait_for_window(chunk)
                bins["assert"] += 1
                fetch_cycle = self.cycle
                self.cycle += 1
                for i in range(index, index + chunk):
                    complete = self._execute_opt_uop(
                        uops[i],
                        addresses[i],
                        fetch_cycle,
                        slot_values_map,
                        slot_flags_map,
                    )
                    if complete > last_complete:
                        last_complete = complete
                index += chunk
        recovery = last_complete + self.RECOVERY_LATENCY
        if recovery > self.cycle:
            bins["assert"] += recovery - self.cycle
            self.cycle = recovery
        # Roll back: the frame's register, flags, *and* store-buffer
        # effects are squashed.  Without the _mem_ready restore, the
        # aborted frame's speculative stores leaked forwarding times into
        # the post-recovery ICache replay of the same region.  (The
        # squashed uops still drained through the window, so retirement
        # bookkeeping is left alone.)
        self._reg_ready = saved_regs
        self._flags_ready = saved_flags
        self._restore_store_words(saved_mem)
        self.result.uops_fetched += n

    def _store_word_snapshot(self, block: FetchBlock) -> dict[int, int | None]:
        """Prior ``_mem_ready`` entries for every word the block's stores touch.

        ``None`` marks a word absent before the frame ran, so the restore
        can distinguish delete from overwrite.
        """
        deltas: dict[int, int | None] = {}
        mem_ready = self._mem_ready
        for uop, address in zip(block.uops, block.addresses):
            if address is not None and uop.is_store:
                for word in self._mem_words(address, uop.size):
                    if word not in deltas:
                        deltas[word] = mem_ready.get(word)
        return deltas

    def _restore_store_words(self, deltas: dict[int, int | None]) -> None:
        mem_ready = self._mem_ready
        for word, prior in deltas.items():
            if prior is None:
                mem_ready.pop(word, None)
            else:
                mem_ready[word] = prior
