"""The Micro-Op Injector (paper §5.1.1).

Combines the trace reader and the x86-to-rePLay translator: each trace
record is decoded into uops, and the record's dynamic information (memory
addresses, branch direction, indirect targets) is attached to the
corresponding uops.  The result is the continuous micro-operation stream
the Timing Model and rePLay Engine consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.record import TraceRecord
from repro.trace.stream import DynamicTrace
from repro.uops.translate import Translator
from repro.uops.uop import Uop, UopOp


class InjectionError(Exception):
    """Raised when a record's memory transactions don't match its decode flow."""


@dataclass
class InjectedInstruction:
    """One x86 instruction's worth of dynamically annotated uops."""

    record: TraceRecord
    uops: tuple[Uop, ...]

    @property
    def pc(self) -> int:
        return self.record.pc

    @property
    def uop_count(self) -> int:
        return len(self.uops)


class MicroOpInjector:
    """Translates trace records into dynamically annotated uop sequences."""

    def __init__(self) -> None:
        self.translator = Translator()
        self.x86_count = 0
        self.uop_count = 0

    def inject(self, record: TraceRecord) -> InjectedInstruction:
        """Decode one record; attaches mem addresses and branch outcomes."""
        static_uops = self.translator.translate(record.instruction)
        uops: list[Uop] = []
        mem_ops = list(record.mem_ops)
        mem_index = 0
        for static in static_uops:
            uop = static.copy()
            if uop.is_mem:
                if mem_index >= len(mem_ops):
                    raise InjectionError(
                        f"decode flow of {record.instruction} expects more "
                        f"memory transactions than the trace recorded"
                    )
                mem_op = mem_ops[mem_index]
                mem_index += 1
                if mem_op.is_store != uop.is_store:
                    raise InjectionError(
                        f"memory transaction kind mismatch in {record.instruction}"
                    )
                uop.mem_address = mem_op.address
            if uop.op is UopOp.BR:
                uop.taken = record.branch_taken
                uop.dyn_target = record.next_pc
            elif uop.op in (UopOp.JMP, UopOp.JMPI):
                uop.dyn_target = record.next_pc
            uops.append(uop)
        if mem_index != len(mem_ops):
            raise InjectionError(
                f"decode flow of {record.instruction} used {mem_index} memory "
                f"transactions but the trace recorded {len(mem_ops)}"
            )
        self.x86_count += 1
        self.uop_count += len(uops)
        return InjectedInstruction(record=record, uops=tuple(uops))

    def inject_trace(self, trace: DynamicTrace) -> list[InjectedInstruction]:
        """Inject a whole trace (convenience for tests and the harness)."""
        return [self.inject(record) for record in trace]

    @property
    def uops_per_x86(self) -> float:
        """Observed expansion ratio (paper reports 1.4)."""
        if not self.x86_count:
            return 0.0
        return self.uop_count / self.x86_count
