"""Trace infrastructure: records, streams, and the Micro-Op Injector."""

from repro.trace.injector import InjectedInstruction, InjectionError, MicroOpInjector
from repro.trace.record import MemOp, TraceRecord
from repro.trace.stream import DynamicTrace, TraceStats
from repro.trace.tracefile import (
    TraceFileError,
    TraceVersionError,
    dump_trace,
    load_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "DynamicTrace",
    "InjectedInstruction",
    "InjectionError",
    "MemOp",
    "MicroOpInjector",
    "TraceFileError",
    "TraceVersionError",
    "TraceRecord",
    "TraceStats",
    "dump_trace",
    "load_trace",
    "read_trace",
    "write_trace",
]
