"""Dynamic trace records.

The paper's AMD-provided trace files carried, per retired x86 instruction:
instruction data, register state changes, memory transactions, and
interrupt information.  :class:`TraceRecord` carries the same content for
our synthetic traces; the Micro-Op Injector and State Verifier consume
exactly these fields (paper §5.1.1, §5.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86.instructions import Instruction
from repro.x86.registers import Reg


@dataclass(frozen=True)
class MemOp:
    """One memory transaction performed by an x86 instruction."""

    is_store: bool
    address: int
    size: int
    data: int

    @property
    def is_load(self) -> bool:
        return not self.is_store

    def overlaps(self, other: "MemOp") -> bool:
        """Byte-range overlap test, used for alias detection."""
        return (
            self.address < other.address + other.size
            and other.address < self.address + self.size
        )


@dataclass
class TraceRecord:
    """Everything the trace knows about one retired x86 instruction."""

    pc: int
    instruction: Instruction
    next_pc: int
    reg_writes: dict[Reg, int] = field(default_factory=dict)
    flags_after: int | None = None  # None when the instruction leaves flags alone
    mem_ops: tuple[MemOp, ...] = ()
    branch_taken: bool | None = None  # only set for conditional branches

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch

    @property
    def is_conditional_branch(self) -> bool:
        return self.instruction.is_conditional

    @property
    def loads(self) -> tuple[MemOp, ...]:
        return tuple(op for op in self.mem_ops if op.is_load)

    @property
    def stores(self) -> tuple[MemOp, ...]:
        return tuple(op for op in self.mem_ops if op.is_store)
