"""Dynamic trace container and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.record import TraceRecord


@dataclass
class TraceStats:
    """Summary statistics over a dynamic trace (Table 1 analogue)."""

    x86_instructions: int
    loads: int
    stores: int
    conditional_branches: int
    taken_branches: int
    calls: int
    unique_pcs: int

    @property
    def taken_ratio(self) -> float:
        if not self.conditional_branches:
            return 0.0
        return self.taken_branches / self.conditional_branches


class DynamicTrace:
    """A dynamic x86 instruction trace, as read from a trace file.

    Thin wrapper over a list of :class:`TraceRecord` with random access
    (the sequencer peeks ahead to evaluate frame path matches) and
    summary statistics.
    """

    def __init__(self, records: list[TraceRecord], name: str = "trace") -> None:
        self.records = records
        self.name = name

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def __iter__(self):
        return iter(self.records)

    def stats(self) -> TraceStats:
        loads = stores = cond = taken = calls = 0
        pcs: set[int] = set()
        for record in self.records:
            pcs.add(record.pc)
            loads += len(record.loads)
            stores += len(record.stores)
            if record.is_conditional_branch:
                cond += 1
                if record.branch_taken:
                    taken += 1
            if record.instruction.mnemonic.value == "call":
                calls += 1
        return TraceStats(
            x86_instructions=len(self.records),
            loads=loads,
            stores=stores,
            conditional_branches=cond,
            taken_branches=taken,
            calls=calls,
            unique_pcs=len(pcs),
        )
