"""Trace-file serialization (the Trace Reader's on-disk side, paper §5.1.1).

The paper's environment read hardware-generated trace files, each record
carrying instruction data, register state changes, memory transactions,
and branch information.  This module round-trips our
:class:`~repro.trace.record.TraceRecord` streams through a compact
line-oriented format, so traces can be captured once (the expensive
emulation step) and replayed into many simulations — the same workflow
the paper used.

Format (one record per line, little interpretive overhead)::

    R <pc> <next_pc> <flags|-> [w reg=value]* [m L|S addr size data]* [b 0|1]

A header line carries the program's static instruction listing so the
reader can reconstruct :class:`Instruction` objects without the original
program object.
"""

from __future__ import annotations

import io
from typing import IO, Iterable

from repro.trace.record import MemOp, TraceRecord
from repro.trace.stream import DynamicTrace
from repro.x86.instructions import Cond, Imm, Instruction, Label, Mem, Mnemonic
from repro.x86.registers import Reg

FORMAT_VERSION = 1


class TraceFileError(Exception):
    """Raised on malformed trace files."""


class TraceVersionError(TraceFileError):
    """Raised when a trace file's format version is not the supported one.

    Carries the ``found`` and ``supported`` versions plus the offending
    ``filename`` so callers (e.g. the artifact store, which treats a
    version mismatch as a cache miss and recomputes) can tell a stale
    format apart from genuine corruption.
    """

    def __init__(self, found: int, supported: int, filename: str | None = None):
        self.found = found
        self.supported = supported
        self.filename = filename or "<stream>"
        super().__init__(
            f"{self.filename}: unsupported trace format version {found} "
            f"(this reader supports version {supported})"
        )


# --------------------------------------------------------------- writing


def _encode_operand(operand) -> str:
    if isinstance(operand, Reg):
        return f"r{int(operand)}"
    if isinstance(operand, Imm):
        return f"i{operand.value}"
    if isinstance(operand, Label):
        return f"l{operand.name}"
    if isinstance(operand, Mem):
        base = int(operand.base) if operand.base is not None else -1
        index = int(operand.index) if operand.index is not None else -1
        return f"m{base},{index},{operand.scale},{operand.disp},{operand.size}"
    raise TraceFileError(f"cannot encode operand {operand!r}")


def _decode_operand(token: str):
    kind, body = token[0], token[1:]
    if kind == "r":
        return Reg(int(body))
    if kind == "i":
        return Imm(int(body))
    if kind == "l":
        return Label(body)
    if kind == "m":
        base, index, scale, disp, size = (int(x) for x in body.split(","))
        return Mem(
            base=Reg(base) if base >= 0 else None,
            index=Reg(index) if index >= 0 else None,
            scale=scale,
            disp=disp,
            size=size,
        )
    raise TraceFileError(f"cannot decode operand {token!r}")


def _instruction_header(instructions: dict[int, Instruction]) -> Iterable[str]:
    for address in sorted(instructions):
        instr = instructions[address]
        operands = " ".join(_encode_operand(op) for op in instr.operands)
        cond = instr.cond.value if instr.cond else "-"
        targets = ",".join(
            f"{name}={value}" for name, value in sorted(instr.label_targets.items())
        )
        yield (
            f"I {address} {instr.length} {instr.mnemonic.value} {cond} "
            f"[{operands}] [{targets}]"
        )


def write_trace(trace: DynamicTrace, stream: IO[str]) -> None:
    """Serialize a dynamic trace (records + static instructions)."""
    instructions: dict[int, Instruction] = {}
    for record in trace:
        instructions.setdefault(record.pc, record.instruction)
    stream.write(f"TRACE {FORMAT_VERSION} {trace.name} {len(trace)}\n")
    for line in _instruction_header(instructions):
        stream.write(line + "\n")
    for record in trace:
        parts = [
            "R",
            str(record.pc),
            str(record.next_pc),
            str(record.flags_after) if record.flags_after is not None else "-",
        ]
        for reg, value in record.reg_writes.items():
            parts.append(f"w{int(reg)}={value}")
        for mem_op in record.mem_ops:
            kind = "S" if mem_op.is_store else "L"
            parts.append(f"m{kind},{mem_op.address},{mem_op.size},{mem_op.data}")
        if record.branch_taken is not None:
            parts.append(f"b{int(record.branch_taken)}")
        stream.write(" ".join(parts) + "\n")


def dump_trace(trace: DynamicTrace, path: str) -> None:
    """Write a trace to a file path."""
    with open(path, "w") as stream:
        write_trace(trace, stream)


# --------------------------------------------------------------- reading


def _parse_instruction(line: str) -> Instruction:
    head, _, tail = line.partition("[")
    fields = head.split()
    address, length = int(fields[1]), int(fields[2])
    mnemonic = Mnemonic(fields[3])
    cond = None if fields[4] == "-" else Cond(fields[4])
    operand_text, _, target_text = tail.partition("] [")
    operands = tuple(
        _decode_operand(token) for token in operand_text.split() if token
    )
    target_text = target_text.rstrip("]").strip()
    targets = {}
    if target_text:
        for pair in target_text.split(","):
            name, _, value = pair.partition("=")
            targets[name] = int(value)
    instr = Instruction(mnemonic=mnemonic, operands=operands, cond=cond)
    instr.address = address
    instr.length = length
    instr.label_targets = targets
    return instr


def read_trace(stream: IO[str], filename: str | None = None) -> DynamicTrace:
    """Deserialize a trace written by :func:`write_trace`."""
    header = stream.readline().split()
    if len(header) < 4 or header[0] != "TRACE":
        raise TraceFileError("not a trace file")
    version = int(header[1])
    if version != FORMAT_VERSION:
        raise TraceVersionError(version, FORMAT_VERSION, filename)
    name = header[2]
    expected = int(header[3])

    instructions: dict[int, Instruction] = {}
    records: list[TraceRecord] = []
    for line in stream:
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("I "):
            instr = _parse_instruction(line)
            instructions[instr.address] = instr
            continue
        if not line.startswith("R "):
            raise TraceFileError(f"unexpected line {line[:40]!r}")
        fields = line.split()
        pc, next_pc = int(fields[1]), int(fields[2])
        flags = None if fields[3] == "-" else int(fields[3])
        reg_writes: dict[Reg, int] = {}
        mem_ops: list[MemOp] = []
        branch_taken = None
        for token in fields[4:]:
            if token.startswith("w"):
                reg, _, value = token[1:].partition("=")
                reg_writes[Reg(int(reg))] = int(value)
            elif token.startswith("m"):
                kind, address, size, data = token[1:].split(",")
                mem_ops.append(
                    MemOp(
                        is_store=kind == "S",
                        address=int(address),
                        size=int(size),
                        data=int(data),
                    )
                )
            elif token.startswith("b"):
                branch_taken = bool(int(token[1:]))
        try:
            instruction = instructions[pc]
        except KeyError:
            raise TraceFileError(f"record references unknown pc {pc:#x}")
        records.append(
            TraceRecord(
                pc=pc,
                instruction=instruction,
                next_pc=next_pc,
                reg_writes=reg_writes,
                flags_after=flags,
                mem_ops=tuple(mem_ops),
                branch_taken=branch_taken,
            )
        )
    if len(records) != expected:
        raise TraceFileError(
            f"trace declares {expected} records but contains {len(records)}"
        )
    return DynamicTrace(records, name=name)


def load_trace(path: str) -> DynamicTrace:
    """Read a trace from a file path."""
    with open(path) as stream:
        return read_trace(stream, filename=str(path))


def roundtrip(trace: DynamicTrace) -> DynamicTrace:
    """Serialize and deserialize in memory (testing convenience)."""
    buffer = io.StringIO()
    write_trace(trace, buffer)
    buffer.seek(0)
    return read_trace(buffer)
