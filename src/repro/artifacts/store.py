"""Content-addressed artifact store for captured traces and results.

``trace/tracefile.py`` frames emulation as the expensive step meant to be
captured once and replayed many times — the paper's own workflow, where
hardware-generated trace files were produced once and fed to every
simulation.  This store makes that workflow automatic: each artifact
(a captured :class:`DynamicTrace`, or a per-config
:class:`ExperimentResult`) lives on disk under a SHA-256 key derived
from everything that determines its content (workload source, seed,
configuration fields, format version).  Identical inputs hit the cache;
any change to the inputs changes the key and recomputes.

Durability rules:

* writes are atomic (temp file in the same directory, then
  ``os.replace``) so a crashed or concurrent run never leaves a
  half-written entry visible;
* every entry embeds a SHA-256 checksum of its body; a mismatch moves
  the entry to ``quarantine/`` and reads as a miss — corruption is
  logged and recomputed, never fatal;
* a format-version mismatch (store envelope or trace codec) reads as a
  miss and the stale entry is dropped;
* :meth:`ArtifactStore.gc` evicts least-recently-used entries down to a
  byte budget (``REPRO_UOPT_CACHE_BUDGET_MB`` applies it automatically
  after writes).

Entry envelope::

    magic 'RART' | u16 format version | 32-byte sha256(meta+payload)
    u32 meta length | meta JSON (kind, label, created) | payload
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import struct
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.artifacts import codec
from repro.trace.stream import DynamicTrace
from repro.trace.tracefile import TraceFileError

log = logging.getLogger("repro.artifacts")

#: Bump when the envelope, codec, or cached-object layout changes:
#: old entries then read as misses and are recomputed.
#: v2: SimResult/SequencerStats/OptimizerTotals grew fields (window
#: occupancy, cooldown skips, per-pass change counts) — pickled results
#: from v1 would unpickle without them.
FORMAT_VERSION = 2

MAGIC = b"RART"
_HEADER = struct.Struct("<4sH32sI")  # magic, version, digest, meta length

ENV_CACHE_DIR = "REPRO_UOPT_CACHE_DIR"
ENV_CACHE_BUDGET_MB = "REPRO_UOPT_CACHE_BUDGET_MB"

#: Artifact kinds (subdirectories of the store root).
KIND_TRACE = "trace"
KIND_RESULT = "result"
KIND_FUZZ = "fuzz"  # minimized fuzz regression cases (repro.fuzz.corpus)
KINDS = (KIND_TRACE, KIND_RESULT, KIND_FUZZ)


def default_cache_dir() -> Path:
    """Resolve the cache root: env override, else ``~/.cache/repro-uopt``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-uopt"


def content_key(kind: str, material: dict) -> str:
    """SHA-256 key over canonical-JSON key material.

    ``material`` must be JSON-serializable; the kind and store format
    version are always mixed in, so a format bump invalidates everything.
    """
    canon = json.dumps(
        {"kind": kind, "format": FORMAT_VERSION, "material": material},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass
class StoreTelemetry:
    """Per-process counters for one store instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    stale: int = 0
    evicted: int = 0
    discard_failed: int = 0


@dataclass(frozen=True)
class EntryInfo:
    """One on-disk cache entry, as listed by ``cache ls``."""

    kind: str
    key: str
    label: str
    created: float
    size_bytes: int
    mtime: float
    path: Path


class ArtifactStore:
    """Content-addressed, checksummed, size-bounded on-disk cache."""

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        budget_bytes: int | None = None,
    ) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        if budget_bytes is None:
            env = os.environ.get(ENV_CACHE_BUDGET_MB)
            budget_bytes = int(float(env) * 1024 * 1024) if env else None
        self.budget_bytes = budget_bytes
        self.telemetry = StoreTelemetry()

    # ------------------------------------------------------------ layout

    def _entry_path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.art"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # ------------------------------------------------------------- bytes

    def put_bytes(self, kind: str, key: str, payload: bytes, label: str = "") -> Path:
        """Atomically write one entry (temp file + rename)."""
        meta = json.dumps(
            {"kind": kind, "label": label, "created": time.time()},
            sort_keys=True,
        ).encode("utf-8")
        digest = hashlib.sha256(meta + payload).digest()
        header = _HEADER.pack(MAGIC, FORMAT_VERSION, digest, len(meta))

        path = self._entry_path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".art")
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(header)
                stream.write(meta)
                stream.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass  # silent-ok: best-effort temp cleanup; original error re-raised
            raise
        self.telemetry.writes += 1
        if self.budget_bytes is not None:
            self.gc(self.budget_bytes)
        return path

    def get_bytes(self, kind: str, key: str) -> bytes | None:
        """Read and verify one entry; corruption quarantines, never raises."""
        path = self._entry_path(kind, key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.telemetry.misses += 1
            return None
        except OSError as exc:
            log.warning("artifact %s unreadable (%s); treating as miss", path, exc)
            self.telemetry.misses += 1
            return None

        payload = self._verify(path, data)
        if payload is None:
            self.telemetry.misses += 1
            return None
        try:
            os.utime(path)  # LRU touch for gc
        except OSError:
            pass  # silent-ok: a failed LRU touch only skews eviction order
        self.telemetry.hits += 1
        return payload

    def _verify(self, path: Path, data: bytes) -> bytes | None:
        """Unwrap an envelope; quarantine corruption, drop stale versions."""
        if len(data) < _HEADER.size:
            self._quarantine(path, "truncated header")
            return None
        magic, version, digest, meta_len = _HEADER.unpack_from(data)
        if magic != MAGIC:
            self._quarantine(path, "bad magic")
            return None
        if version != FORMAT_VERSION:
            # Stale format: a miss (recompute), not an error.
            log.info(
                "artifact %s has format version %d (supported %d); recomputing",
                path, version, FORMAT_VERSION,
            )
            self.telemetry.stale += 1
            self._discard(path)
            return None
        body = data[_HEADER.size :]
        if len(body) < meta_len:
            self._quarantine(path, "truncated meta")
            return None
        if hashlib.sha256(body).digest() != digest:
            self._quarantine(path, "checksum mismatch")
            return None
        return body[meta_len:]

    def _reclassify_hit_as_miss(self) -> None:
        """Correct telemetry for an entry that decoded as unusable.

        ``get_bytes`` already counted a hit; take it back — but never
        below zero, in case a caller cleared or replaced the telemetry
        between the read and the decode.
        """
        if self.telemetry.hits > 0:
            self.telemetry.hits -= 1
        self.telemetry.stale += 1
        self.telemetry.misses += 1

    def _read_meta(self, data: bytes) -> dict | None:
        if len(data) < _HEADER.size:
            return None
        magic, _version, _digest, meta_len = _HEADER.unpack_from(data)
        if magic != MAGIC or len(data) < _HEADER.size + meta_len:
            return None
        try:
            return json.loads(data[_HEADER.size : _HEADER.size + meta_len])
        except ValueError:
            return None

    def _quarantine(self, path: Path, reason: str) -> None:
        self.telemetry.corrupt += 1
        target = self.quarantine_dir / path.name
        log.warning(
            "artifact %s corrupt (%s); quarantined to %s and recomputing",
            path, reason, target,
        )
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError as exc:
            log.warning(
                "could not quarantine %s (%s); discarding instead", path, exc
            )
            self._discard(path)

    def _discard(self, path: Path) -> None:
        """Delete one entry; a failure is counted and logged, not fatal.

        A deletion that silently fails would leave a corrupt or stale
        entry resurfacing on every read — make it visible.
        """
        try:
            path.unlink(missing_ok=True)
        except OSError as exc:
            self.telemetry.discard_failed += 1
            log.warning("could not discard artifact %s (%s)", path, exc)

    # ------------------------------------------------------------ traces

    def put_trace(self, key: str, trace: DynamicTrace, label: str = "") -> Path:
        return self.put_bytes(
            KIND_TRACE, key, codec.encode_trace(trace), label or trace.name
        )

    def get_trace(self, key: str) -> DynamicTrace | None:
        payload = self.get_bytes(KIND_TRACE, key)
        if payload is None:
            return None
        try:
            return codec.decode_trace(payload)
        except TraceFileError as exc:
            # Includes TraceVersionError: stale codec ⇒ miss, recompute.
            log.info("cached trace %s unusable (%s); recomputing", key[:12], exc)
            self._reclassify_hit_as_miss()
            self._discard(self._entry_path(KIND_TRACE, key))
            return None

    # ----------------------------------------------------------- results

    def put_result(self, key: str, result: object, label: str = "") -> Path:
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        return self.put_bytes(KIND_RESULT, key, payload, label)

    def get_result(self, key: str) -> object | None:
        payload = self.get_bytes(KIND_RESULT, key)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception as exc:  # stale class layout, truncated pickle, ...
            log.info("cached result %s unusable (%s); recomputing", key[:12], exc)
            self._reclassify_hit_as_miss()
            self._discard(self._entry_path(KIND_RESULT, key))
            return None

    # --------------------------------------------------------- inventory

    def entries(self) -> Iterator[EntryInfo]:
        """Yield every valid-looking entry (corrupt files are skipped)."""
        for kind in KINDS:
            kind_dir = self.root / kind
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob("*/*.art")):
                try:
                    stat = path.stat()
                    meta = self._read_meta(path.read_bytes())
                except OSError:
                    continue
                if meta is None:
                    continue
                yield EntryInfo(
                    kind=kind,
                    key=path.stem,
                    label=str(meta.get("label", "")),
                    created=float(meta.get("created", 0.0)),
                    size_bytes=stat.st_size,
                    mtime=stat.st_mtime,
                    path=path,
                )

    def stats(self) -> dict:
        """On-disk summary: entry counts and byte totals per kind."""
        per_kind = {kind: {"entries": 0, "bytes": 0} for kind in KINDS}
        for entry in self.entries():
            per_kind[entry.kind]["entries"] += 1
            per_kind[entry.kind]["bytes"] += entry.size_bytes
        total_entries = sum(k["entries"] for k in per_kind.values())
        total_bytes = sum(k["bytes"] for k in per_kind.values())
        quarantined = (
            len(list(self.quarantine_dir.glob("*.art")))
            if self.quarantine_dir.is_dir()
            else 0
        )
        return {
            "root": str(self.root),
            "kinds": per_kind,
            "entries": total_entries,
            "bytes": total_bytes,
            "quarantined": quarantined,
            "budget_bytes": self.budget_bytes,
        }

    # ---------------------------------------------------------- eviction

    def plan_gc(self, max_bytes: int) -> list[EntryInfo]:
        """The least-recently-used entries :meth:`gc` would evict.

        Computed without deleting anything — ``cache gc --dry-run``
        prints this plan so a budget can be rehearsed before it is
        enforced.
        """
        entries = sorted(self.entries(), key=lambda e: e.mtime)
        total = sum(e.size_bytes for e in entries)
        plan: list[EntryInfo] = []
        for entry in entries:
            if total <= max_bytes:
                break
            plan.append(entry)
            total -= entry.size_bytes
        return plan

    def gc(self, max_bytes: int) -> tuple[int, int]:
        """Evict least-recently-used entries until under ``max_bytes``.

        Returns ``(entries_removed, bytes_removed)``.
        """
        removed = removed_bytes = 0
        for entry in self.plan_gc(max_bytes):
            self._discard(entry.path)
            removed += 1
            removed_bytes += entry.size_bytes
        if removed:
            self.telemetry.evicted += removed
            log.info("gc evicted %d entries (%d bytes)", removed, removed_bytes)
        return removed, removed_bytes

    def clear(self) -> int:
        """Delete every cache entry (quarantine included). Returns count."""
        removed = 0
        for entry in list(self.entries()):
            self._discard(entry.path)
            removed += 1
        if self.quarantine_dir.is_dir():
            for path in self.quarantine_dir.glob("*.art"):
                self._discard(path)
        return removed
