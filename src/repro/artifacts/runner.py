"""Parallel experiment runner: fan the workload × config matrix out.

Every figure of the paper is a (workload, configuration) matrix whose
cells are independent simulations.  This runner executes those cells
through the artifact store (so warm runs do zero emulation) and, when
``jobs > 1``, across a :class:`concurrent.futures.ProcessPoolExecutor`
with deterministic result ordering — results come back in task order no
matter which worker finishes first, so parallel and serial runs produce
identical tables.

Cache keying (see :func:`trace_key_material` / :func:`result_key_material`):
a trace is addressed by the SHA-256 of the workload's *source code*,
scale, seed, and instruction budget; a result additionally mixes in every
field of the :class:`ExperimentConfig` (nested dataclasses included) and
the store format version.  Changing any input — editing a workload,
flipping an optimizer pass, resizing a cache — changes the key and forces
a recompute; nothing is ever served stale.
"""

from __future__ import annotations

import hashlib
import inspect
import logging
import os
import sys
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pickle import PicklingError
from typing import TYPE_CHECKING

from repro.artifacts.store import ArtifactStore, content_key
from repro.metrics import MetricsRegistry, get_registry
from repro.trace.stream import DynamicTrace
from repro.workloads import build_workload, get_workload

if TYPE_CHECKING:  # imported lazily at runtime (harness imports us back)
    from repro.harness.experiment import ExperimentConfig, ExperimentResult

log = logging.getLogger("repro.artifacts")

#: Default emulation budget (mirrors ``build_workload``'s default).
MAX_INSTRUCTIONS = 400_000


class TaskError(RuntimeError):
    """A task's own computation failed.

    Distinct from pool-infrastructure trouble on purpose: a bug in a
    workload or pass must surface immediately with its original
    traceback (chained via ``__cause__``), never trigger the
    degrade-to-serial path that would re-run every cell just to hit the
    same error minutes later.
    """

    def __init__(self, label: str, original: BaseException):
        self.label = label
        super().__init__(
            f"{label} failed: {type(original).__name__}: {original}"
        )


class MatrixTaskError(TaskError):
    """A matrix cell's own computation failed."""

    def __init__(self, workload: str, config_name: str, original: BaseException):
        self.workload = workload
        self.config_name = config_name
        super().__init__(f"matrix cell {workload}/{config_name}", original)


# ------------------------------------------------------------------ keying


def _workload_source_digest(name: str) -> str:
    """SHA-256 of the workload's defining module source.

    Editing a workload program invalidates its cached trace (and every
    result derived from it).  Workloads carrying an explicit content
    ``digest`` (imported traces, whose "source" is the canonical trace
    file itself) use it directly.  Falls back to the repro package
    version when source is unavailable (zipapp, frozen).
    """
    workload = get_workload(name)
    if workload.digest:
        return workload.digest
    module = (
        sys.modules.get(workload.build.__module__)
        if workload.build is not None
        else None
    )
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        import repro

        source = f"repro=={getattr(repro, '__version__', 'unknown')}"
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def trace_key_material(
    name: str,
    scale: int | None = None,
    seed: int = 1,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> dict:
    workload = get_workload(name)
    return {
        "workload": name,
        "source": _workload_source_digest(name),
        "scale": scale if scale is not None else workload.default_scale,
        "seed": seed,
        "max_instructions": max_instructions,
    }


def trace_key(
    name: str,
    scale: int | None = None,
    seed: int = 1,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> str:
    return content_key("trace", trace_key_material(name, scale, seed, max_instructions))


def result_key_material(
    name: str,
    config: ExperimentConfig,
    scale: int | None = None,
    seed: int = 1,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> dict:
    return {
        "trace": trace_key_material(name, scale, seed, max_instructions),
        "config": config.fingerprint(),
    }


def result_key(
    name: str,
    config: ExperimentConfig,
    scale: int | None = None,
    seed: int = 1,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> str:
    return content_key(
        "result", result_key_material(name, config, scale, seed, max_instructions)
    )


def cell_key(
    workload: str,
    config_name: str,
    scale: int | None = None,
    seed: int = 1,
) -> str:
    """The store key of one *named*-config cell (the cluster routing key).

    Resolves ``config_name`` through the harness config table and keys
    exactly like :func:`result_key`, so the cluster gateway's hash ring
    places a cell on the node whose artifact store already holds its
    result.  Raises :class:`KeyError` for unknown names.
    """
    from repro.harness.experiment import CONFIGS

    config = CONFIGS.get(config_name)
    if config is None:
        raise KeyError(f"unknown config {config_name!r}")
    return result_key(workload, config, scale, seed)


# ------------------------------------------------------------------- tasks


@dataclass(frozen=True)
class MatrixTask:
    """One cell of the workload × configuration matrix."""

    workload: str
    config: ExperimentConfig
    scale: int | None = None
    seed: int = 1


@dataclass
class TaskTelemetry:
    """What one cell cost and where its pieces came from."""

    workload: str
    config_name: str
    seconds: float = 0.0
    result_cache_hit: bool = False
    trace_cache_hit: bool = False
    emulated: bool = False
    simulated: bool = False
    worker_pid: int = 0


@dataclass
class MatrixRun:
    """Results in task order plus per-task telemetry."""

    tasks: list[MatrixTask]
    results: list[ExperimentResult]
    telemetry: list[TaskTelemetry]
    jobs: int = 1
    seconds: float = 0.0

    @property
    def results_by_cell(self) -> dict[tuple[str, str], ExperimentResult]:
        return {
            (task.workload, task.config.name): result
            for task, result in zip(self.tasks, self.results)
        }


#: In-process trace memo so one process never emulates/decodes the same
#: workload twice (the matrix shares a trace across its configurations,
#: exactly as ResultMatrix always did in-memory).  Bounded FIFO.
_TRACE_MEMO: dict[str, DynamicTrace] = {}
_TRACE_MEMO_CAP = 16


def _memoize_trace(key: str, trace: DynamicTrace) -> None:
    if len(_TRACE_MEMO) >= _TRACE_MEMO_CAP:
        _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
    _TRACE_MEMO[key] = trace


def compute_trace(
    name: str,
    scale: int | None = None,
    seed: int = 1,
    store: ArtifactStore | None = None,
    telemetry: TaskTelemetry | None = None,
    metrics: MetricsRegistry | None = None,
) -> DynamicTrace:
    """Fetch a captured trace (memory, then store), or emulate and capture it."""
    key = trace_key(name, scale, seed)
    memoized = _TRACE_MEMO.get(key)
    if memoized is not None:
        return memoized
    if store is not None:
        trace = store.get_trace(key)
        if trace is not None:
            if telemetry is not None:
                telemetry.trace_cache_hit = True
            _memoize_trace(key, trace)
            return trace
    trace = build_workload(name, scale=scale, seed=seed, metrics=metrics)
    if telemetry is not None:
        telemetry.emulated = True
    if store is not None:
        store.put_trace(key, trace, label=f"{name} seed={seed}")
    _memoize_trace(key, trace)
    return trace


def compute_cell(
    task: MatrixTask, store: ArtifactStore | None = None
) -> tuple[ExperimentResult, TaskTelemetry, dict]:
    """Resolve one matrix cell: result cache → trace cache → emulate+simulate.

    The third element is a :class:`MetricsRegistry` snapshot holding
    everything the cell measured.  Cells record into a private registry
    (not the process global) so snapshots survive the pickle boundary
    back from pool workers and merge deterministically in task order.
    """
    telemetry = TaskTelemetry(
        workload=task.workload,
        config_name=task.config.name,
        worker_pid=os.getpid(),
    )
    registry = MetricsRegistry()
    start = time.perf_counter()
    from repro.harness.experiment import ExperimentResult, run_experiment

    key = result_key(task.workload, task.config, task.scale, task.seed)
    result: ExperimentResult | None = None
    if store is not None:
        cached = store.get_result(key)
        if isinstance(cached, ExperimentResult):
            result = cached
            telemetry.result_cache_hit = True
    if result is None:
        trace = compute_trace(
            task.workload, task.scale, task.seed, store, telemetry,
            metrics=registry,
        )
        result = run_experiment(
            trace, task.config, workload_name=task.workload, metrics=registry
        )
        telemetry.simulated = True
        if store is not None:
            store.put_result(
                key, result, label=f"{task.workload}/{task.config.name}"
            )
    telemetry.seconds = time.perf_counter() - start
    return result, telemetry, registry.snapshot()


# --------------------------------------------------------------- fan-out

#: Per-worker store, rebuilt lazily from the root path shipped with each
#: task (ArtifactStore itself is cheap; this just avoids re-reading env).
_WORKER_STORES: dict[str, ArtifactStore] = {}


def resolve_worker_store(store_root: str | None) -> ArtifactStore | None:
    """Return this process's store for ``store_root``, building it once.

    A worker keeps one :class:`ArtifactStore` per root for its whole
    lifetime, so telemetry accumulates on a single instance and repeated
    tasks never re-read the environment.
    """
    if store_root is None:
        return None
    store = _WORKER_STORES.get(store_root)
    if store is None:
        store = _WORKER_STORES[store_root] = ArtifactStore(store_root)
    return store


def run_cell(
    task: MatrixTask, store_root: str | None = None
) -> tuple[ExperimentResult, TaskTelemetry, dict]:
    """Worker-side entrypoint: resolve the store, then compute one cell.

    This is the single task body shared by the matrix runner's pool
    workers and the :mod:`repro.service` worker pool — both ship a
    picklable ``(task, store_root)`` pair across the process boundary
    and get back ``(result, telemetry, metrics snapshot)``.
    """
    return compute_cell(task, resolve_worker_store(store_root))


def _worker(payload: tuple[MatrixTask, str | None]):
    task, store_root = payload
    return run_cell(task, store_root)


#: Exception types that mean "the pool itself is unusable" — the only
#: legitimate reasons to degrade to a serial run.  Anything else coming
#: out of a cell is that cell's own bug and must propagate immediately.
_POOL_ERRORS = (BrokenProcessPool, PicklingError, OSError)


def run_tasks(
    worker,
    payloads: list,
    jobs: int = 1,
    registry: MetricsRegistry | None = None,
    wrap_error=None,
) -> tuple[list, int]:
    """Generic ordered fan-out over a process pool (or serially).

    ``worker`` must be a module-level picklable callable taking one
    payload; ``payloads`` must pickle.  Results come back in payload
    order regardless of completion order, so parallel and serial runs
    are indistinguishable to the caller.  Returns ``(results,
    effective_jobs)``.

    Error handling is two-tier, shared by the experiment matrix and the
    fuzz campaign: pool-infrastructure failures (broken pool, pickling,
    OS errors standing the pool up) degrade to a serial run with a
    warning and a ``runner.pool_fallbacks`` count; a task's own
    exception raises a :class:`TaskError` (customized via
    ``wrap_error(payload, exc) -> TaskError``) with the original
    traceback chained.
    """
    registry = registry if registry is not None else get_registry()
    results: list = [None] * len(payloads)
    done = [False] * len(payloads)

    def fail(index: int, exc: BaseException):
        if wrap_error is not None:
            raise wrap_error(payloads[index], exc) from exc
        raise TaskError(f"task {index}", exc) from exc

    effective_jobs = max(1, min(jobs, len(payloads)))
    if effective_jobs > 1:
        try:
            _fan_out(worker, payloads, effective_jobs, results, done, fail)
        except TaskError:
            raise
        except _POOL_ERRORS as exc:
            log.warning(
                "process pool unavailable (%s: %s); falling back to serial",
                type(exc).__name__,
                exc,
            )
            registry.counter("runner.pool_fallbacks").inc()
            effective_jobs = 1
    for index, payload in enumerate(payloads):
        if not done[index]:
            try:
                results[index] = worker(payload)
            except Exception as exc:
                fail(index, exc)
    return results, effective_jobs


def _fan_out(worker, payloads, jobs, results, done, fail) -> None:
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            index: pool.submit(worker, payload)
            for index, payload in enumerate(payloads)
        }
        for index, future in futures.items():
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                # A dead pool is infrastructure trouble; let run_tasks
                # degrade to serial.
                raise
            except Exception as exc:
                # The task itself failed: surface it now instead of
                # re-running everything serially just to hit the same
                # bug again.
                fail(index, exc)
            else:
                done[index] = True


def run_matrix(
    tasks: list[MatrixTask],
    jobs: int = 1,
    store: ArtifactStore | None = None,
    metrics: MetricsRegistry | None = None,
) -> MatrixRun:
    """Run every task, serially or across a process pool.

    Results are returned in input order regardless of completion order.
    ``jobs <= 1`` (or an environment where process pools are unavailable)
    runs serially in-process.

    Error handling is two-tier: pool-infrastructure failures
    (:class:`BrokenProcessPool`, :class:`PicklingError`, :class:`OSError`
    while standing the pool up) degrade to a serial run with a warning
    and a ``runner.pool_fallbacks`` count; a task's own exception raises
    :class:`MatrixTaskError` naming the failing cell, with the original
    traceback chained.

    Each cell's metric snapshot is merged into ``metrics`` (the
    process-global registry when not given) in task order, so parallel
    and serial runs accumulate identical deterministic counter totals.
    """
    registry = metrics if metrics is not None else get_registry()
    start = time.perf_counter()
    store_root = str(store.root) if store is not None else None
    if store is not None:
        # Serial execution (and the degrade-to-serial path) runs _worker
        # in this process: seed the worker cache with the caller's store
        # so cache hits and telemetry land on the instance the caller
        # can see.  Pool children build their own from store_root.
        _WORKER_STORES[store_root] = store
    outputs, effective_jobs = run_tasks(
        _worker,
        [(task, store_root) for task in tasks],
        jobs=jobs,
        registry=registry,
        wrap_error=lambda payload, exc: MatrixTaskError(
            payload[0].workload, payload[0].config.name, exc
        ),
    )
    results: list[ExperimentResult] = []
    telemetry: list[TaskTelemetry] = []
    for result, task_telemetry, snapshot in outputs:
        results.append(result)
        telemetry.append(task_telemetry)
        if snapshot is not None:
            registry.merge(snapshot)
    registry.counter("runner.cells").inc(len(tasks))
    registry.gauge("runner.effective_jobs").set(effective_jobs)
    if store is not None:
        _publish_store_metrics(registry, store)

    return MatrixRun(
        tasks=list(tasks),
        results=results,  # type: ignore[arg-type]
        telemetry=telemetry,  # type: ignore[arg-type]
        jobs=effective_jobs,
        seconds=time.perf_counter() - start,
    )


def _publish_store_metrics(registry: MetricsRegistry, store: ArtifactStore) -> None:
    """Fold the store's ad-hoc telemetry deltas into the registry.

    Counts only what changed since the last publication, so repeated
    ``run_matrix`` calls against one store never double-count.
    """
    published = getattr(store, "_published_telemetry", {})
    current = vars(store.telemetry)
    for field_name, value in current.items():
        delta = value - published.get(field_name, 0)
        if delta > 0:
            registry.counter(f"store.{field_name}").inc(delta)
    store._published_telemetry = dict(current)


