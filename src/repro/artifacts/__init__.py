"""Artifact caching and parallel experiment orchestration.

Capture once, simulate many times: the expensive pieces of a harness run
(workload emulation, per-config simulation) are cached content-addressed
on disk and fanned out across processes.  See ``DESIGN.md`` §"Artifact
store".
"""

from repro.artifacts.codec import (
    CODEC_VERSION,
    decode_trace,
    dump_trace_binary,
    encode_trace,
    load_trace_binary,
    roundtrip_binary,
)
from repro.artifacts.store import (
    ArtifactStore,
    EntryInfo,
    FORMAT_VERSION,
    StoreTelemetry,
    content_key,
    default_cache_dir,
)
from repro.artifacts.runner import (
    MatrixRun,
    MatrixTask,
    MatrixTaskError,
    TaskTelemetry,
    compute_cell,
    compute_trace,
    result_key,
    run_matrix,
    trace_key,
)

__all__ = [
    "ArtifactStore",
    "CODEC_VERSION",
    "EntryInfo",
    "FORMAT_VERSION",
    "MatrixRun",
    "MatrixTask",
    "MatrixTaskError",
    "StoreTelemetry",
    "TaskTelemetry",
    "compute_cell",
    "compute_trace",
    "content_key",
    "decode_trace",
    "default_cache_dir",
    "dump_trace_binary",
    "encode_trace",
    "load_trace_binary",
    "result_key",
    "roundtrip_binary",
    "run_matrix",
    "trace_key",
]
