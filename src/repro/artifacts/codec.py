"""Binary trace codec: a compact, fast alternative to the text format.

:mod:`repro.trace.tracefile` serializes :class:`DynamicTrace` streams as
human-readable lines.  That is convenient for inspection but costly in
both bytes and parse time, which matters once the artifact store starts
caching every captured trace.  This codec packs the same content with
:mod:`struct` and compresses it with :mod:`gzip`; it is round-trip
equivalent with the text format (property-tested over all 14 workloads
in ``tests/artifacts/test_codec.py``).

Layout (after gzip decompression)::

    magic 'RUTB' | u16 version | str name | u32 n_instructions
    per instruction:
        q address | H length | str mnemonic | str cond ('' = none)
        B n_operands  (operand: tag byte + payload, see _pack_operand)
        B n_label_targets (each: str name | q value)
    u32 n_records
    per record:
        q pc | q next_pc | B has_flags [| q flags]
        B n_reg_writes (each: B reg | q value)
        B n_mem_ops    (each: B is_store | q address | B size | q data)
        B branch (0 none, 1 not-taken, 2 taken)

Strings are ``H length + utf-8 bytes``.  A version bump makes old
entries decode to :class:`TraceVersionError`, which the artifact store
treats as a cache miss (recompute), never a crash.
"""

from __future__ import annotations

import gzip
import struct
import zlib

from repro.trace.record import MemOp, TraceRecord
from repro.trace.stream import DynamicTrace
from repro.trace.tracefile import TraceFileError, TraceVersionError
from repro.x86.instructions import Cond, Imm, Instruction, Label, Mem, Mnemonic
from repro.x86.registers import Reg

MAGIC = b"RUTB"
CODEC_VERSION = 1

#: Compression level: 1 keeps encode fast; the struct packing already
#: removes most of the text format's redundancy.
_GZIP_LEVEL = 1

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_HEAD = struct.Struct("<4sH")
_REC_HEAD = struct.Struct("<qq")
_MEM_OP = struct.Struct("<BqBq")  # is_store, address, size, data

_OP_REG, _OP_IMM, _OP_LABEL, _OP_MEM = 0, 1, 2, 3


class _Writer:
    def __init__(self) -> None:
        self.parts: list[bytes] = []

    def raw(self, data: bytes) -> None:
        self.parts.append(data)

    def u8(self, value: int) -> None:
        self.parts.append(bytes((value,)))

    def u16(self, value: int) -> None:
        self.parts.append(_U16.pack(value))

    def u32(self, value: int) -> None:
        self.parts.append(_U32.pack(value))

    def i64(self, value: int) -> None:
        self.parts.append(_I64.pack(value))

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        self.parts.append(_U16.pack(len(data)) + data)

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise TraceFileError("binary trace truncated")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]

    def string(self) -> str:
        return self.take(self.u16()).decode("utf-8")


# --------------------------------------------------------------- operands


def _pack_operand(w: _Writer, operand) -> None:
    if isinstance(operand, Reg):
        w.u8(_OP_REG)
        w.u8(int(operand))
    elif isinstance(operand, Imm):
        w.u8(_OP_IMM)
        w.i64(operand.value)
    elif isinstance(operand, Label):
        w.u8(_OP_LABEL)
        w.string(operand.name)
    elif isinstance(operand, Mem):
        w.u8(_OP_MEM)
        w.u8(0 if operand.base is None else int(operand.base) + 1)
        w.u8(0 if operand.index is None else int(operand.index) + 1)
        w.u8(operand.scale)
        w.i64(operand.disp)
        w.u8(operand.size)
    else:
        raise TraceFileError(f"cannot encode operand {operand!r}")


def _unpack_operand(r: _Reader):
    tag = r.u8()
    if tag == _OP_REG:
        return Reg(r.u8())
    if tag == _OP_IMM:
        return Imm(r.i64())
    if tag == _OP_LABEL:
        return Label(r.string())
    if tag == _OP_MEM:
        base, index = r.u8(), r.u8()
        scale = r.u8()
        disp = r.i64()
        size = r.u8()
        return Mem(
            base=Reg(base - 1) if base else None,
            index=Reg(index - 1) if index else None,
            scale=scale,
            disp=disp,
            size=size,
        )
    raise TraceFileError(f"unknown operand tag {tag}")


# --------------------------------------------------------------- encoding


def encode_trace(trace: DynamicTrace) -> bytes:
    """Serialize a trace to gzip-compressed binary bytes."""
    w = _Writer()
    w.raw(_HEAD.pack(MAGIC, CODEC_VERSION))
    w.string(trace.name)

    instructions: dict[int, Instruction] = {}
    for record in trace:
        instructions.setdefault(record.pc, record.instruction)

    w.u32(len(instructions))
    for address in sorted(instructions):
        instr = instructions[address]
        w.i64(address)
        w.u16(instr.length)
        w.string(instr.mnemonic.value)
        w.string(instr.cond.value if instr.cond else "")
        w.u8(len(instr.operands))
        for operand in instr.operands:
            _pack_operand(w, operand)
        w.u8(len(instr.label_targets))
        for name in sorted(instr.label_targets):
            w.string(name)
            w.i64(instr.label_targets[name])

    w.u32(len(trace))
    for record in trace:
        w.raw(_REC_HEAD.pack(record.pc, record.next_pc))
        if record.flags_after is None:
            w.u8(0)
        else:
            w.u8(1)
            w.i64(record.flags_after)
        w.u8(len(record.reg_writes))
        for reg, value in record.reg_writes.items():
            w.u8(int(reg))
            w.i64(value)
        w.u8(len(record.mem_ops))
        for mem_op in record.mem_ops:
            w.raw(
                _MEM_OP.pack(
                    int(mem_op.is_store), mem_op.address, mem_op.size, mem_op.data
                )
            )
        if record.branch_taken is None:
            w.u8(0)
        else:
            w.u8(2 if record.branch_taken else 1)
    # mtime=0 keeps the gzip header time-free: equal traces encode to
    # equal bytes, so content digests of encoded traces are stable.
    return gzip.compress(w.getvalue(), compresslevel=_GZIP_LEVEL, mtime=0)


# --------------------------------------------------------------- decoding


def decode_trace(data: bytes, filename: str | None = None) -> DynamicTrace:
    """Deserialize bytes produced by :func:`encode_trace`.

    Every failure mode raises :class:`TraceFileError` (or its subclass
    :class:`TraceVersionError`, which names the file and both versions) —
    never a bare ``struct.error``, ``ValueError``, or decode exception —
    so the artifact store and the importer can treat any bad payload as
    a structured miss/rejection.
    """
    where = filename or "<bytes>"
    try:
        raw = gzip.decompress(data)
    except (OSError, EOFError, zlib.error) as exc:
        raise TraceFileError(f"{where}: bad gzip payload: {exc}") from exc
    r = _Reader(raw)
    if len(raw) < _HEAD.size:
        raise TraceFileError(f"{where}: binary trace truncated (no header)")
    magic, version = _HEAD.unpack(r.take(_HEAD.size))
    if magic != MAGIC:
        raise TraceFileError(f"{where}: not a binary trace (bad magic)")
    if version != CODEC_VERSION:
        raise TraceVersionError(version, CODEC_VERSION, filename)

    instructions: dict[int, Instruction] = {}
    try:
        name = r.string()
        for _ in range(r.u32()):
            address = r.i64()
            length = r.u16()
            mnemonic = Mnemonic(r.string())
            cond_text = r.string()
            cond = Cond(cond_text) if cond_text else None
            operands = tuple(_unpack_operand(r) for _ in range(r.u8()))
            targets = {}
            for _ in range(r.u8()):
                target_name = r.string()
                targets[target_name] = r.i64()
            instr = Instruction(mnemonic=mnemonic, operands=operands, cond=cond)
            instr.address = address
            instr.length = length
            instr.label_targets = targets
            instructions[address] = instr
    except TraceFileError as exc:
        raise TraceFileError(f"{where}: {exc}") from exc
    except (ValueError, UnicodeDecodeError, struct.error) as exc:
        # Unknown mnemonic/cond/register/operand tag or mangled string
        # bytes: corrupt content, not a stale version.
        raise TraceFileError(
            f"{where}: corrupt instruction table: {type(exc).__name__}: {exc}"
        ) from exc

    # The record loop is the hot path for warm cache reads: unpack
    # directly from the buffer with a local offset instead of going
    # through _Reader's per-field method calls.
    try:
        record_count = r.u32()
    except TraceFileError as exc:
        raise TraceFileError(f"{where}: {exc}") from exc
    pos = r.pos
    end = len(raw)
    rec_head_unpack = _REC_HEAD.unpack_from
    i64_unpack = _I64.unpack_from
    mem_op_unpack = _MEM_OP.unpack_from
    mem_op_size = _MEM_OP.size
    records: list[TraceRecord] = []
    append = records.append
    try:
        for _ in range(record_count):
            pc, next_pc = rec_head_unpack(raw, pos)
            pos += 16
            if raw[pos]:
                flags = i64_unpack(raw, pos + 1)[0]
                pos += 9
            else:
                flags = None
                pos += 1
            reg_writes: dict[Reg, int] = {}
            for _ in range(raw[pos]):
                reg_writes[Reg(raw[pos + 1])] = i64_unpack(raw, pos + 2)[0]
                pos += 9
            pos += 1
            mem_ops = []
            for _ in range(raw[pos]):
                is_store, address, size, mem_data = mem_op_unpack(raw, pos + 1)
                mem_ops.append(
                    MemOp(
                        is_store=bool(is_store),
                        address=address,
                        size=size,
                        data=mem_data,
                    )
                )
                pos += mem_op_size
            pos += 1
            branch_byte = raw[pos]
            pos += 1
            branch_taken = None if branch_byte == 0 else branch_byte == 2
            append(
                TraceRecord(
                    pc=pc,
                    instruction=instructions[pc],
                    next_pc=next_pc,
                    reg_writes=reg_writes,
                    flags_after=flags,
                    mem_ops=tuple(mem_ops),
                    branch_taken=branch_taken,
                )
            )
    except (struct.error, IndexError, ValueError) as exc:
        raise TraceFileError(f"{where}: binary trace truncated: {exc}") from exc
    except KeyError as exc:
        raise TraceFileError(
            f"{where}: record references unknown pc {exc}"
        ) from None
    if pos != end:
        raise TraceFileError(
            f"{where}: binary trace has {end - pos} trailing bytes"
        )
    return DynamicTrace(records, name=name)


def dump_trace_binary(trace: DynamicTrace, path: str) -> None:
    """Write a binary trace to a file path."""
    with open(path, "wb") as stream:
        stream.write(encode_trace(trace))


def load_trace_binary(path: str) -> DynamicTrace:
    """Read a binary trace from a file path."""
    with open(path, "rb") as stream:
        return decode_trace(stream.read(), filename=str(path))


def roundtrip_binary(trace: DynamicTrace) -> DynamicTrace:
    """Encode and decode in memory (testing convenience)."""
    return decode_trace(encode_trace(trace))
