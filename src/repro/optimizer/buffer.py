"""The optimization buffer (paper Figure 3).

Holds a frame in remapped form: slot *m* defines physical register *m*, so
retrieving the parent that produced an operand is an index lookup, and a
hardware-style Dependency List maps each slot to its children.  The buffer
also tracks the frame's live-out bindings — which operand supplies each
architectural register (and the flags) at frame exit — both for the frame
as a whole and at every basic-block boundary (needed for the intra-block
optimization scope of Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uops.uop import Uop, UopOp, UReg
from repro.optimizer.optuop import DefRef, LiveIn, Operand, OPERAND_FIELDS, OptUop, from_dyn_uop


class BufferError(Exception):
    """Raised on malformed frames (e.g. use of an undefined temporary)."""


@dataclass
class BlockBoundary:
    """Liveness snapshot at the end of one basic block within the frame."""

    end_x86_index: int  # first x86 index of the *next* block
    live_out: dict[UReg, Operand] = field(default_factory=dict)
    flags_slot: int | None = None
    flags_written: bool = False


class OptimizationBuffer:
    """A frame rendered into single-assignment (remapped) form.

    ``uops[slot]`` defines physical register ``slot``.  ``value_children``
    and ``flags_children`` are the Dependency List structure; passes must
    mutate operands through :meth:`rewrite_operand` /
    :meth:`replace_all_uses` so the lists stay consistent.
    """

    def __init__(
        self,
        dyn_uops: list[Uop],
        x86_indices: list[int],
        mem_keys: list[tuple[int, int] | None],
        block_starts: list[int] | None = None,
    ) -> None:
        if not (len(dyn_uops) == len(x86_indices) == len(mem_keys)):
            raise BufferError("uops/x86_indices/mem_keys length mismatch")
        self.uops: list[OptUop] = []
        self.value_children: list[set[int]] = []
        self.flags_children: list[set[int]] = []
        self.live_out: dict[UReg, Operand] = {}
        self.flags_live_out_slot: int | None = None
        self.flags_live_out_written: bool = False
        self.block_boundaries: list[BlockBoundary] = []
        self._block_starts = sorted(set(block_starts or [0]))
        self._remap(dyn_uops, x86_indices, mem_keys)

    # ------------------------------------------------------------- build

    def _remap(
        self,
        dyn_uops: list[Uop],
        x86_indices: list[int],
        mem_keys: list[tuple[int, int] | None],
    ) -> None:
        """The Remapper: bind operands, assign dst = slot index."""
        reg_def: dict[UReg, Operand] = {UReg(i): LiveIn(UReg(i)) for i in range(8)}
        flags_def: int | None = None
        flags_written = False
        block_iter = iter(self._block_starts[1:] + [None])
        next_block_start = next(block_iter)

        def lookup(reg: UReg | None) -> Operand | None:
            if reg is None:
                return None
            operand = reg_def.get(reg)
            if operand is None:
                raise BufferError(f"use of undefined temporary {reg.name}")
            return operand

        for slot, (uop, x86_index, mem_key) in enumerate(
            zip(dyn_uops, x86_indices, mem_keys)
        ):
            while next_block_start is not None and x86_index >= next_block_start:
                self.block_boundaries.append(
                    BlockBoundary(
                        end_x86_index=next_block_start,
                        live_out=dict(reg_def),
                        flags_slot=flags_def,
                        flags_written=flags_written,
                    )
                )
                next_block_start = next(block_iter)
            opt = from_dyn_uop(uop, slot)
            opt.x86_index = x86_index
            opt.mem_key = mem_key
            opt.position = slot
            opt.src_a = lookup(uop.src_a)
            opt.src_b = lookup(uop.src_b)
            opt.src_data = lookup(uop.src_data)
            if opt.reads_flags:
                opt.flags_src = flags_def
            if uop.dst is not None:
                opt.arch_dst = uop.dst if uop.dst.is_architectural else None
                reg_def[uop.dst] = DefRef(slot)
            if uop.writes_flags:
                flags_def = slot
                flags_written = True
            self.uops.append(opt)
            self.value_children.append(set())
            self.flags_children.append(set())

        # Final (frame-level) live-outs: architectural registers only.
        self.live_out = {
            reg: operand
            for reg, operand in reg_def.items()
            if reg.is_architectural and not isinstance(operand, LiveIn)
        }
        self.flags_live_out_slot = flags_def
        self.flags_live_out_written = flags_written
        # Trailing boundary covering the last block.
        self.block_boundaries.append(
            BlockBoundary(
                end_x86_index=1 + (x86_indices[-1] if x86_indices else 0),
                live_out={
                    reg: op
                    for reg, op in reg_def.items()
                    if reg.is_architectural and not isinstance(op, LiveIn)
                },
                flags_slot=flags_def,
                flags_written=flags_written,
            )
        )
        # Populate dependency lists.
        for slot, opt in enumerate(self.uops):
            for _, operand in opt.operands():
                if isinstance(operand, DefRef):
                    self.value_children[operand.slot].add(slot)
            if opt.reads_flags and opt.flags_src is not None:
                self.flags_children[opt.flags_src].add(slot)

    # ------------------------------------------------------- navigation

    def __len__(self) -> int:
        return len(self.uops)

    def valid_slots(self) -> list[int]:
        return [s for s, u in enumerate(self.uops) if u.valid]

    def valid_uops(self) -> list[OptUop]:
        return [u for u in self.uops if u.valid]

    def mem_slots(self) -> list[int]:
        """Valid memory uops in frame order (memory order is preserved)."""
        return [s for s, u in enumerate(self.uops) if u.valid and u.is_mem]

    def parent(self, operand: Operand) -> OptUop | None:
        """Parent Logic: the uop that produced an operand (None for live-ins)."""
        if isinstance(operand, DefRef):
            return self.uops[operand.slot]
        return None

    def children_of(self, slot: int) -> set[int]:
        """Next Child Logic: slots consuming this slot's value."""
        return set(self.value_children[slot])

    # ------------------------------------------------------- mutation

    def rewrite_operand(self, slot: int, fld: str, new: Operand | None) -> None:
        """Point one operand field at a new producer, fixing dependency lists."""
        uop = self.uops[slot]
        old = getattr(uop, fld)
        if old == new:
            return
        if isinstance(old, DefRef) and not self._still_references(slot, old.slot, exclude=fld):
            self.value_children[old.slot].discard(slot)
        setattr(uop, fld, new)
        if isinstance(new, DefRef):
            self.value_children[new.slot].add(slot)

    def _still_references(self, slot: int, producer: int, exclude: str) -> bool:
        uop = self.uops[slot]
        for name in OPERAND_FIELDS:
            if name == exclude:
                continue
            operand = getattr(uop, name)
            if isinstance(operand, DefRef) and operand.slot == producer:
                return True
        return False

    def replace_all_uses(self, slot: int, new: Operand) -> int:
        """Rewire every consumer of ``slot`` (and live-out bindings) to ``new``.

        Sound whenever the value of ``new`` provably equals the value slot
        produces.  Returns the number of operand rewrites performed.
        """
        count = 0
        for child in list(self.value_children[slot]):
            child_uop = self.uops[child]
            for name in OPERAND_FIELDS:
                operand = getattr(child_uop, name)
                if isinstance(operand, DefRef) and operand.slot == slot:
                    self.rewrite_operand(child, name, new)
                    count += 1
        old_ref = DefRef(slot)
        for reg, operand in list(self.live_out.items()):
            if operand == old_ref:
                self.live_out[reg] = new
                count += 1
        for boundary in self.block_boundaries:
            for reg, operand in list(boundary.live_out.items()):
                if operand == old_ref:
                    boundary.live_out[reg] = new
                    count += 1
        return count

    def replace_flags_uses(self, slot: int, new_slot: int | None) -> int:
        """Rewire flag consumers of ``slot`` to read ``new_slot`` instead.

        Sound when the two slots provably produce identical flag words
        (e.g. CSE of identical operations on identical operands).  Also
        rebinds the frame/block flag live-out markers.
        """
        count = 0
        for child in list(self.flags_children[slot]):
            self.uops[child].flags_src = new_slot
            self.flags_children[slot].discard(child)
            if new_slot is not None:
                self.flags_children[new_slot].add(child)
            count += 1
        if self.flags_live_out_slot == slot:
            self.flags_live_out_slot = new_slot
            count += 1
        for boundary in self.block_boundaries:
            if boundary.flags_slot == slot:
                boundary.flags_slot = new_slot
                count += 1
        return count

    def invalidate(self, slot: int) -> None:
        """Remove a uop: mark invalid and detach it from its parents' lists.

        Callers must have rewired/checked children; invalidating a slot
        that still has consumers or live-out references is a logic error.
        """
        uop = self.uops[slot]
        if not uop.valid:
            return
        if self.value_children[slot]:
            raise BufferError(f"invalidating slot {slot} with live children")
        uop.valid = False
        for name in OPERAND_FIELDS:
            operand = getattr(uop, name)
            if isinstance(operand, DefRef):
                setattr(uop, name, None)
                if not self._still_references(slot, operand.slot, exclude=name):
                    self.value_children[operand.slot].discard(slot)
        if uop.flags_src is not None:
            self.flags_children[uop.flags_src].discard(slot)
            uop.flags_src = None

    # ------------------------------------------------------- liveness

    def value_protected_slots(self, scope: str = "frame") -> set[int]:
        """Slots referenced by live-out bindings under an optimization scope.

        ``frame``: only the frame-final bindings matter (atomic frame).
        ``block``/``inter``: every basic-block boundary must also preserve
        its architectural values (control may exit there).
        """
        protected: set[int] = set()
        maps = [self.live_out]
        if scope != "frame":
            maps.extend(b.live_out for b in self.block_boundaries)
        for mapping in maps:
            for operand in mapping.values():
                if isinstance(operand, DefRef):
                    protected.add(operand.slot)
        return protected

    def flags_protected_slots(self, scope: str = "frame") -> set[int]:
        """Slots whose flag outputs are architecturally live under a scope."""
        protected: set[int] = set()
        if self.flags_live_out_slot is not None:
            protected.add(self.flags_live_out_slot)
        if scope != "frame":
            for boundary in self.block_boundaries:
                if boundary.flags_slot is not None:
                    protected.add(boundary.flags_slot)
        return protected

    def value_dead(self, slot: int, protected: set[int]) -> bool:
        """No consumers and not live-out (value side only)."""
        uop = self.uops[slot]
        if not uop.has_value_dst:
            return True
        return not self.value_children[slot] and slot not in protected

    def flags_dead(self, slot: int, flags_protected: set[int]) -> bool:
        """Flag output unused and not live-out (flag side only)."""
        uop = self.uops[slot]
        if not uop.writes_flags:
            return True
        return not self.flags_children[slot] and slot not in flags_protected

    # ------------------------------------------------------- block info

    def block_of(self, slot: int) -> int:
        """Basic-block index (within the frame) that owns a slot."""
        x86_index = self.uops[slot].x86_index
        block = 0
        for i, start in enumerate(self._block_starts):
            if x86_index >= start:
                block = i
        return block

    # ------------------------------------------------------- statistics

    def valid_count(self) -> int:
        return sum(1 for u in self.uops if u.valid)

    def load_count(self) -> int:
        return sum(1 for u in self.uops if u.valid and u.is_load)

    def store_count(self) -> int:
        return sum(1 for u in self.uops if u.valid and u.is_store)

    def dump(self) -> str:
        """Multi-line rendering of the valid uops (Figure-2 style)."""
        lines = []
        for slot, uop in enumerate(self.uops):
            if uop.valid:
                lines.append(f"{slot:02d} {uop}")
        return "\n".join(lines)
