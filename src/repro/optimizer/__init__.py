"""The rePLay optimization engine (paper §3-§4)."""

from repro.optimizer.alias import AliasClass, classify_alias, observed_disjoint, same_address
from repro.optimizer.buffer import BufferError, OptimizationBuffer
from repro.optimizer.datapath import (
    InstrumentedBuffer,
    PrimitiveCounts,
    check_latency_budget,
    instrument,
)
from repro.optimizer.optuop import DefRef, LiveIn, Operand, OptUop
from repro.optimizer.pipeline import FrameOptimizer, OptimizationResult, OptimizerConfig
from repro.optimizer.passes.base import OptContext, Pass, PassStats

__all__ = [
    "AliasClass",
    "BufferError",
    "DefRef",
    "FrameOptimizer",
    "InstrumentedBuffer",
    "LiveIn",
    "PrimitiveCounts",
    "check_latency_budget",
    "instrument",
    "OptContext",
    "OptimizationBuffer",
    "OptimizationResult",
    "OptimizerConfig",
    "OptUop",
    "Operand",
    "Pass",
    "PassStats",
    "classify_alias",
    "observed_disjoint",
    "same_address",
]
