"""Pass framework for the rePLay optimization engine.

Each pass is a callable object over the optimization buffer; it returns
the number of changes it made so the pipeline can iterate to a fixed
point.  The :class:`OptContext` carries the optimization scope (frame vs
basic-block, Figure 9), the speculation switch (unsafe-store memory
optimizations, §3.4), and accumulating statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.optuop import DefRef, LiveIn, Operand


@dataclass
class PassStats:
    """Counters accumulated across one frame's optimization."""

    changes_by_pass: dict[str, int] = field(default_factory=dict)
    loads_removed: int = 0
    loads_removed_speculatively: int = 0
    stores_marked_unsafe: int = 0
    uops_removed: int = 0
    iterations: int = 0

    def record(self, pass_name: str, changes: int) -> None:
        if changes:
            self.changes_by_pass[pass_name] = (
                self.changes_by_pass.get(pass_name, 0) + changes
            )


@dataclass
class OptContext:
    """Per-frame optimization context shared by all passes.

    ``metrics`` is an optional :class:`repro.metrics.MetricsRegistry`;
    when attached, :meth:`Pass.__call__` counts each pass's changes into
    it (``optimizer.pass.<name>.changes``) as they happen.
    """

    scope: str = "frame"  # 'frame' | 'inter' | 'block'
    speculation: bool = True
    stats: PassStats = field(default_factory=PassStats)
    metrics: object | None = None

    def can_fold(
        self, buf: OptimizationBuffer, through_slot: int, consumer_slot: int
    ) -> bool:
        """May an optimization exploit ``through_slot``'s definition at
        ``consumer_slot``?  Block scope restricts this to one basic block."""
        if self.scope != "block":
            return True
        return buf.block_of(through_slot) == buf.block_of(consumer_slot)

    def protected_values(self, buf: OptimizationBuffer) -> set[int]:
        return buf.value_protected_slots(self.scope)

    def protected_flags(self, buf: OptimizationBuffer) -> set[int]:
        return buf.flags_protected_slots(self.scope)

    def flags_dead(self, buf: OptimizationBuffer, slot: int) -> bool:
        return buf.flags_dead(slot, self.protected_flags(buf))

    def value_dead(self, buf: OptimizationBuffer, slot: int) -> bool:
        return buf.value_dead(slot, self.protected_values(buf))


class Pass:
    """Base class: subclasses implement :meth:`run` and set ``name``."""

    name = "pass"

    def __call__(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        changes = self.run(buf, ctx)
        ctx.stats.record(self.name, changes)
        if changes and ctx.metrics is not None:
            ctx.metrics.counter(f"optimizer.pass.{self.name}.changes").inc(changes)
        return changes

    def run(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        raise NotImplementedError


def operand_slot(operand: Operand | None) -> int | None:
    """Slot number of a DefRef operand, else None."""
    if isinstance(operand, DefRef):
        return operand.slot
    return None


def is_live_in(operand: Operand | None) -> bool:
    return isinstance(operand, LiveIn)
