"""Dead-code elimination (paper §3.1).

Removes uops whose value has no consumers and is not bound to any
live-out register, and whose flag output (if any) is likewise dead.  All
other optimizations "leave dead code" behind (paper §6.4) and rely on
this pass, so — like the paper's ablation study — it is enabled in every
configuration.

Stores, assertions, and control uops are never dead: stores have memory
side effects, assertions guard the frame's speculation, and the frame's
exit branch defines the successor.
"""

from __future__ import annotations

from repro.uops.uop import UopOp
from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.passes.base import OptContext, Pass

_SIDE_EFFECT_OPS = frozenset(
    {UopOp.STORE, UopOp.ASSERT, UopOp.ASSERT_CMP, UopOp.BR, UopOp.JMP, UopOp.JMPI}
)


class DeadCodeElimination(Pass):
    name = "dce"

    def run(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        changes = 0
        removed = True
        while removed:
            removed = False
            protected = ctx.protected_values(buf)
            flags_protected = ctx.protected_flags(buf)
            for slot in reversed(buf.valid_slots()):
                uop = buf.uops[slot]
                if uop.op in _SIDE_EFFECT_OPS:
                    continue
                if not buf.value_dead(slot, protected):
                    continue
                if not buf.flags_dead(slot, flags_protected):
                    continue
                buf.invalidate(slot)
                ctx.stats.uops_removed += 1
                removed = True
                changes += 1
        return changes
