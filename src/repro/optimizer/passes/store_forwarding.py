"""Store forwarding (paper §3.2-§3.4, §6.4 "no SF").

A load whose address is symbolically identical to an earlier store's
receives the stored value directly, and the load is removed.  Stores are
never removed ("No optimization removes stores", §3.4).  When a possibly
aliasing store intervenes, the optimizer may speculate if the
constructing execution observed no alias, marking the intervening store
unsafe; a dynamic alias at frame execution time aborts the frame.

Only full-width (4-byte) pairs are forwarded: narrower stores truncate
the source register, so forwarding the register value would resurrect
high-order bits the memory round-trip discards.
"""

from __future__ import annotations

from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.passes.base import OptContext, Pass
from repro.optimizer.alias import AliasClass, classify_alias, observed_disjoint, same_address


class StoreForwarding(Pass):
    name = "sf"

    def run(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        changes = 0
        mem_slots = buf.mem_slots()
        for position, slot in enumerate(mem_slots):
            load = buf.uops[slot]
            if not load.is_load or not load.valid:
                continue
            if load.size != 4 or load.sign_extend:
                continue
            match = self._find_forwarding_store(buf, ctx, mem_slots, position)
            if match is None:
                continue
            store_slot, speculative_stores = match
            store = buf.uops[store_slot]
            if store.src_data is None:
                continue  # defensive: stores always carry a data operand
            for intervening in speculative_stores:
                unsafe_store = buf.uops[intervening]
                if not unsafe_store.unsafe:
                    unsafe_store.unsafe = True
                    ctx.stats.stores_marked_unsafe += 1
                unsafe_store.unsafe_guards.append(store_slot)
            buf.replace_all_uses(slot, store.src_data)
            buf.invalidate(slot)
            ctx.stats.loads_removed += 1
            if speculative_stores:
                ctx.stats.loads_removed_speculatively += 1
            changes += 1
        return changes

    def _find_forwarding_store(
        self,
        buf: OptimizationBuffer,
        ctx: OptContext,
        mem_slots: list[int],
        position: int,
    ) -> tuple[int, list[int]] | None:
        """Walk earlier stores looking for one covering this load."""
        load = buf.uops[mem_slots[position]]
        speculative: list[int] = []
        for earlier_slot in reversed(mem_slots[:position]):
            earlier = buf.uops[earlier_slot]
            if not earlier.valid or earlier.is_load:
                continue
            if (
                same_address(earlier, load)
                and earlier.size == 4
                and ctx.can_fold(buf, earlier_slot, load.slot)
            ):
                return earlier_slot, speculative
            verdict = classify_alias(earlier, load)
            if verdict is AliasClass.NO:
                continue
            if verdict is AliasClass.MUST:
                return None  # partial overlap: memory must supply the bytes
            if ctx.speculation and observed_disjoint(earlier, load):
                speculative.append(earlier_slot)
                continue
            return None
        return None
