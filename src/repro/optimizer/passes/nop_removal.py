"""NOP removal (paper §6.4, "no NOP").

Removes NOP uops and unconditional direct jumps within the frame: a frame
embodies a single control path, so intra-frame direct jumps carry no
information — the sequencer already knows the frame's successor.
"""

from __future__ import annotations

from repro.uops.uop import UopOp
from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.passes.base import OptContext, Pass


class NopRemoval(Pass):
    name = "nop"

    def run(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        changes = 0
        for slot in buf.valid_slots():
            uop = buf.uops[slot]
            if uop.op is UopOp.NOP or uop.op is UopOp.JMP:
                buf.invalidate(slot)
                changes += 1
        return changes
