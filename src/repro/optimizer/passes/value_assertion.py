"""Value-assertion optimization (paper §3.4, §6.4 "no ASST").

Fuses the ubiquitous x86 idiom of a flag-generating compare (CMP/TEST —
a SUB/AND uop with no live value destination) followed by an assertion
into a single ASSERT_CMP micro-operation.  The fused uop recomputes the
compare internally, so it still produces the compare's flag word when the
flags are architecturally live at frame exit.
"""

from __future__ import annotations

from repro.uops.uop import UopOp
from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.passes.base import OptContext, Pass


class ValueAssertion(Pass):
    name = "asst"

    def run(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        changes = 0
        for slot in buf.valid_slots():
            assertion = buf.uops[slot]
            if assertion.op is not UopOp.ASSERT:
                continue
            producer_slot = assertion.flags_src
            if producer_slot is None:
                continue
            producer = buf.uops[producer_slot]
            if not producer.valid or producer.op not in (UopOp.SUB, UopOp.AND):
                continue
            if producer.preserves_cf:
                continue  # INC/DEC-style: flag output depends on incoming CF
            if not ctx.can_fold(buf, producer_slot, slot):
                continue
            # The compare's value must be dead (CMP/TEST produce none; an
            # ALU op whose result is still used cannot be absorbed).
            if not ctx.value_dead(buf, producer_slot):
                continue
            # Its flag output may be consumed only by this assertion (the
            # fused uop will reproduce the flag word for later consumers
            # via the live-out rebinding below).
            if buf.flags_children[producer_slot] != {slot}:
                continue
            # Fuse.
            assertion.op = UopOp.ASSERT_CMP
            assertion.cmp_kind = producer.op
            buf.rewrite_operand(slot, "src_a", producer.src_a)
            buf.rewrite_operand(slot, "src_b", producer.src_b)
            assertion.imm = producer.imm
            assertion.writes_flags = producer.writes_flags
            # The assertion no longer reads a flags def.
            buf.flags_children[producer_slot].discard(slot)
            assertion.flags_src = None
            if assertion.writes_flags:
                buf.replace_flags_uses(producer_slot, slot)
                producer.writes_flags = False
            buf.invalidate(producer_slot)
            changes += 1
        return changes
