"""Reassociation (paper §3.1, §6.4 "no RA") and copy propagation.

The paper's single most important optimization: it flattens chains of
``reg = reg ± imm`` updates (stack-pointer manipulation from PUSH/POP/
CALL/RET) by re-pointing consumers at the chain's root with an adjusted
displacement, and propagates register copies.  Only after reassociation
do memory uops expose symbolically identical addresses, which is what
lets CSE and store forwarding detect redundant and forwarded loads
("RA is a gateway optimization", §6.4).

Flag safety: re-pointing a *memory* operand or a flag-free ALU uop never
touches flags.  Folding into a flag-writing ALU consumer changes which
operand values produce its CF/OF, so that is only done when the
consumer's flag output is dead.
"""

from __future__ import annotations

from repro.x86.registers import MASK32
from repro.uops.uop import UopOp
from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.optuop import DefRef, Operand, OptUop
from repro.optimizer.passes.base import OptContext, Pass, operand_slot


def _chain_delta(uop: OptUop) -> int | None:
    """If ``uop`` computes ``src_a + delta``, return delta (else None)."""
    if uop.op is UopOp.ADD and uop.src_b is None and uop.imm is not None:
        return uop.imm
    if uop.op is UopOp.SUB and uop.src_b is None and uop.imm is not None:
        return -uop.imm
    if uop.op is UopOp.LEA and uop.src_b is None:
        return uop.imm or 0
    return None


class Reassociation(Pass):
    name = "ra"

    def run(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        changes = 0
        for slot in buf.valid_slots():
            uop = buf.uops[slot]
            if uop.op is UopOp.MOV and uop.src_a is not None:
                changes += self._copy_propagate(buf, ctx, uop)
                continue
            delta = _chain_delta(uop)
            if delta is not None and uop.src_a is not None:
                changes += self._fold_into_children(buf, ctx, uop, delta)
            if uop.op is UopOp.LEA and uop.src_b is not None:
                changes += self._fold_lea_into_children(buf, ctx, uop)
        return changes

    # ---------------------------------------------------------------- MOV

    def _copy_propagate(
        self, buf: OptimizationBuffer, ctx: OptContext, uop: OptUop
    ) -> int:
        """Rewire consumers of a register copy to the copied value."""
        source = uop.src_a
        assert source is not None
        changes = 0
        for child in sorted(buf.children_of(uop.slot)):
            if not ctx.can_fold(buf, uop.slot, child):
                continue
            child_uop = buf.uops[child]
            for name, operand in child_uop.operands():
                if operand == DefRef(uop.slot):
                    buf.rewrite_operand(child, name, source)
                    changes += 1
        # Live-out bindings can also bypass the copy (RAT-level aliasing).
        if ctx.scope != "block":
            ref = DefRef(uop.slot)
            for reg, bound in list(buf.live_out.items()):
                if bound == ref:
                    buf.live_out[reg] = source
                    changes += 1
            for boundary in buf.block_boundaries:
                for reg, bound in list(boundary.live_out.items()):
                    if bound == ref:
                        boundary.live_out[reg] = source
                        changes += 1
        return changes

    # ------------------------------------------------------------- chains

    def _fold_into_children(
        self, buf: OptimizationBuffer, ctx: OptContext, uop: OptUop, delta: int
    ) -> int:
        """Re-point children of ``dst = root + delta`` at ``root``."""
        root = uop.src_a
        assert root is not None
        changes = 0
        for child in sorted(buf.children_of(uop.slot)):
            if not ctx.can_fold(buf, uop.slot, child):
                continue
            child_uop = buf.uops[child]
            ref = DefRef(uop.slot)
            if child_uop.op in (UopOp.LOAD, UopOp.STORE, UopOp.LEA):
                if child_uop.src_a == ref:
                    buf.rewrite_operand(child, "src_a", root)
                    child_uop.imm = _wrap(child_uop.imm, delta)
                    changes += 1
                if child_uop.src_b == ref:
                    buf.rewrite_operand(child, "src_b", root)
                    child_uop.imm = _wrap(child_uop.imm, delta * child_uop.scale)
                    changes += 1
                continue
            if child_uop.op in (UopOp.ADD, UopOp.SUB):
                if child_uop.writes_flags and not ctx.flags_dead(buf, child):
                    continue
                if child_uop.src_a == ref and child_uop.src_b is None:
                    sign = 1 if child_uop.op is UopOp.ADD else -1
                    # child = (root + delta) op imm  ==  root op' imm'
                    total = sign * (child_uop.imm or 0) + delta
                    buf.rewrite_operand(child, "src_a", root)
                    child_uop.op = UopOp.ADD
                    child_uop.imm = total
                    if child_uop.writes_flags:
                        buf.replace_flags_uses(child, child_uop.flags_src)
                        child_uop.writes_flags = False
                    if child_uop.preserves_cf:
                        # No longer reads the incoming CF once flag-free.
                        if child_uop.flags_src is not None:
                            buf.flags_children[child_uop.flags_src].discard(child)
                        child_uop.preserves_cf = False
                        child_uop.flags_src = None
                    changes += 1
                elif child_uop.op is UopOp.ADD and child_uop.src_b is not None:
                    # child = y + (root + delta) -> LEA(y, root, 1, delta)
                    if child_uop.writes_flags and not ctx.flags_dead(buf, child):
                        continue
                    if child_uop.src_a == ref:
                        other_field, this_field = "src_b", "src_a"
                    elif child_uop.src_b == ref:
                        other_field, this_field = "src_a", "src_b"
                    else:  # pragma: no cover - dependency list guarantees a ref
                        continue
                    other = getattr(child_uop, other_field)
                    child_uop.op = UopOp.LEA
                    buf.rewrite_operand(child, "src_a", other)
                    buf.rewrite_operand(child, "src_b", root)
                    child_uop.scale = 1
                    child_uop.imm = _wrap(child_uop.imm, delta) if child_uop.imm else delta
                    if child_uop.writes_flags:
                        buf.replace_flags_uses(child, child_uop.flags_src)
                        child_uop.writes_flags = False
                    changes += 1
        return changes

    def _fold_lea_into_children(
        self, buf: OptimizationBuffer, ctx: OptContext, uop: OptUop
    ) -> int:
        """Fold ``lea dst, [a + b*s + d]`` into index-free memory children."""
        changes = 0
        for child in sorted(buf.children_of(uop.slot)):
            if not ctx.can_fold(buf, uop.slot, child):
                continue
            child_uop = buf.uops[child]
            if child_uop.op not in (UopOp.LOAD, UopOp.STORE):
                continue
            if child_uop.src_a == DefRef(uop.slot) and child_uop.src_b is None:
                buf.rewrite_operand(child, "src_a", uop.src_a)
                buf.rewrite_operand(child, "src_b", uop.src_b)
                child_uop.scale = uop.scale
                child_uop.imm = _wrap(child_uop.imm, uop.imm or 0)
                changes += 1
        return changes


def _wrap(imm: int | None, delta: int) -> int:
    """Displacement arithmetic with signed-wrapping semantics.

    Displacements are kept as small signed Python ints so that symbolic
    address comparison (literal displacement equality) behaves naturally;
    the interpreter masks to 32 bits at evaluation time.
    """
    return (imm or 0) + delta
