"""Individual optimization passes (paper §3, §6.4)."""

from repro.optimizer.passes.base import OptContext, Pass, PassStats
from repro.optimizer.passes.constant_propagation import ConstantPropagation
from repro.optimizer.passes.cse import CommonSubexpression
from repro.optimizer.passes.dead_code import DeadCodeElimination
from repro.optimizer.passes.nop_removal import NopRemoval
from repro.optimizer.passes.reassociation import Reassociation
from repro.optimizer.passes.store_forwarding import StoreForwarding
from repro.optimizer.passes.value_assertion import ValueAssertion

__all__ = [
    "CommonSubexpression",
    "ConstantPropagation",
    "DeadCodeElimination",
    "NopRemoval",
    "OptContext",
    "Pass",
    "PassStats",
    "Reassociation",
    "StoreForwarding",
    "ValueAssertion",
]
