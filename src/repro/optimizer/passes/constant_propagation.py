"""Constant propagation (paper §6.4, "no CP").

Propagates LIMM-defined constants into consumers' immediate fields, folds
fully constant operations, simplifies identity operations (``x + 0``),
statically discharges value assertions whose operands are constants, and
converts indirect jumps with constant targets into direct jumps — the
paper's example of removing a RET's return jump once store forwarding has
forwarded the constant return address (§3.3).

Folding an operand into an immediate never changes the consumer's result
or flags (same input value).  *Replacing* a flag-writing uop (e.g. turning
a constant ADD into a LIMM) is only done when its flag output is dead,
because our uop ISA has no "load constant flags" operation.
"""

from __future__ import annotations

from repro.x86.instructions import cond_holds
from repro.x86.registers import MASK32, to_signed
from repro.uops.uop import UopOp
from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.optuop import DefRef, OptUop
from repro.optimizer.passes.base import OptContext, Pass, operand_slot

_COMMUTATIVE = frozenset({UopOp.ADD, UopOp.AND, UopOp.OR, UopOp.XOR, UopOp.MUL})

_FOLDABLE_ALU = frozenset(
    {
        UopOp.ADD,
        UopOp.SUB,
        UopOp.AND,
        UopOp.OR,
        UopOp.XOR,
        UopOp.SHL,
        UopOp.SHR,
        UopOp.SAR,
        UopOp.MUL,
    }
)


def _eval_alu(op: UopOp, a: int, b: int) -> int:
    """Constant evaluation matching the uop interpreter's value semantics."""
    if op is UopOp.ADD:
        return (a + b) & MASK32
    if op is UopOp.SUB:
        return (a - b) & MASK32
    if op is UopOp.AND:
        return a & b
    if op is UopOp.OR:
        return a | b
    if op is UopOp.XOR:
        return a ^ b
    if op is UopOp.MUL:
        return (to_signed(a) * to_signed(b)) & MASK32
    count = b & 0x1F
    if op is UopOp.SHL:
        return (a << count) & MASK32
    if op is UopOp.SHR:
        return a >> count
    if op is UopOp.SAR:
        return (to_signed(a) >> count) & MASK32
    raise ValueError(f"not a foldable ALU op: {op}")


class ConstantPropagation(Pass):
    name = "cp"

    def run(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        changes = 0
        known: dict[int, int] = {}
        for slot in buf.valid_slots():
            uop = buf.uops[slot]
            changes += self._fold_operands(buf, ctx, uop, known)
            value = self._known_value(uop, known)
            if value is not None:
                known[slot] = value
                changes += self._simplify_constant(buf, ctx, uop, value)
            changes += self._simplify_identity(buf, ctx, uop)
            changes += self._discharge_assert(buf, ctx, uop, known)
        return changes

    # ------------------------------------------------------------ helpers

    def _fold_operands(
        self,
        buf: OptimizationBuffer,
        ctx: OptContext,
        uop: OptUop,
        known: dict[int, int],
    ) -> int:
        """Fold constant-producing parents into this uop's immediates."""
        changes = 0
        op = uop.op

        def const_of(operand) -> int | None:
            producer = operand_slot(operand)
            if producer is None or producer not in known:
                return None
            if not ctx.can_fold(buf, producer, uop.slot):
                return None
            return known[producer]

        if op in _FOLDABLE_ALU:
            value = const_of(uop.src_b)
            if value is not None and uop.imm is None:
                buf.rewrite_operand(uop.slot, "src_b", None)
                uop.imm = value
                changes += 1
            elif op in _COMMUTATIVE and uop.src_b is not None:
                value = const_of(uop.src_a)
                if value is not None and uop.imm is None:
                    # Swap so the constant lands in the immediate field.
                    buf.rewrite_operand(uop.slot, "src_a", uop.src_b)
                    buf.rewrite_operand(uop.slot, "src_b", None)
                    uop.imm = value
                    changes += 1
        elif op in (UopOp.LOAD, UopOp.STORE, UopOp.LEA):
            value = const_of(uop.src_a)
            if value is not None:
                buf.rewrite_operand(uop.slot, "src_a", None)
                uop.imm = ((uop.imm or 0) + value) & MASK32
                changes += 1
            value = const_of(uop.src_b)
            if value is not None:
                buf.rewrite_operand(uop.slot, "src_b", None)
                uop.imm = ((uop.imm or 0) + value * uop.scale) & MASK32
                uop.scale = 1
                changes += 1
        elif op is UopOp.MOV:
            value = const_of(uop.src_a)
            if value is not None:  # MOV writes no flags: always convertible
                buf.rewrite_operand(uop.slot, "src_a", None)
                uop.op = UopOp.LIMM
                uop.imm = value
                changes += 1
        elif op is UopOp.JMPI:
            value = const_of(uop.src_a)
            if value is not None:
                buf.rewrite_operand(uop.slot, "src_a", None)
                uop.op = UopOp.JMP
                uop.target = value
                changes += 1
        elif op is UopOp.ASSERT_CMP:
            value = const_of(uop.src_b)
            if value is not None and uop.imm is None:
                buf.rewrite_operand(uop.slot, "src_b", None)
                uop.imm = value
                changes += 1
        return changes

    def _known_value(self, uop: OptUop, known: dict[int, int]) -> int | None:
        """Compute this slot's constant value, if statically known."""
        op = uop.op
        if not uop.valid:
            return None
        if op is UopOp.LIMM:
            return (uop.imm or 0) & MASK32
        if (
            op in (UopOp.XOR, UopOp.SUB)
            and uop.src_a is not None
            and uop.src_a == uop.src_b
        ):
            return 0  # the x86 zeroing idiom (XOR r,r / SUB r,r)
        if op is UopOp.MOV:
            producer = operand_slot(uop.src_a)
            if producer is not None and producer in known:
                return known[producer]
            return None
        if op is UopOp.LEA and uop.src_a is None and uop.src_b is None:
            return (uop.imm or 0) & MASK32
        if op in _FOLDABLE_ALU and uop.src_b is None and uop.imm is not None:
            producer = operand_slot(uop.src_a)
            if producer is not None and producer in known:
                return _eval_alu(op, known[producer], uop.imm & MASK32)
            return None
        if op is UopOp.NOT:
            producer = operand_slot(uop.src_a)
            if producer is not None and producer in known:
                return (~known[producer]) & MASK32
        if op is UopOp.NEG:
            producer = operand_slot(uop.src_a)
            if producer is not None and producer in known:
                return (-known[producer]) & MASK32
        return None

    def _simplify_constant(
        self, buf: OptimizationBuffer, ctx: OptContext, uop: OptUop, value: int
    ) -> int:
        """Rewrite a fully constant op as LIMM (when its flags are dead)."""
        if uop.op in (UopOp.LIMM,):
            return 0
        if uop.op not in _FOLDABLE_ALU and uop.op not in (
            UopOp.NEG,
            UopOp.NOT,
            UopOp.LEA,
        ):
            return 0
        if uop.writes_flags and not ctx.flags_dead(buf, uop.slot):
            return 0
        producer = operand_slot(uop.src_a)
        if producer is not None and not ctx.can_fold(buf, producer, uop.slot):
            return 0
        buf.rewrite_operand(uop.slot, "src_a", None)
        buf.rewrite_operand(uop.slot, "src_b", None)
        uop.op = UopOp.LIMM
        uop.imm = value
        uop.scale = 1
        if uop.writes_flags:
            buf.replace_flags_uses(uop.slot, uop.flags_src)
            uop.writes_flags = False
        return 1

    def _simplify_identity(
        self, buf: OptimizationBuffer, ctx: OptContext, uop: OptUop
    ) -> int:
        """``x op identity`` -> MOV x (when flags are dead)."""
        if uop.src_a is None or uop.src_b is not None or uop.imm is None:
            return 0
        identity = {
            UopOp.ADD: 0,
            UopOp.SUB: 0,
            UopOp.OR: 0,
            UopOp.XOR: 0,
            UopOp.SHL: 0,
            UopOp.SHR: 0,
            UopOp.SAR: 0,
            UopOp.MUL: 1,
        }.get(uop.op)
        if identity is None or (uop.imm & MASK32) != identity:
            return 0
        if uop.writes_flags and not ctx.flags_dead(buf, uop.slot):
            return 0
        uop.op = UopOp.MOV
        uop.imm = None
        if uop.writes_flags:
            buf.replace_flags_uses(uop.slot, uop.flags_src)
            uop.writes_flags = False
        return 1

    def _discharge_assert(
        self,
        buf: OptimizationBuffer,
        ctx: OptContext,
        uop: OptUop,
        known: dict[int, int],
    ) -> int:
        """Remove value assertions whose outcome is statically true."""
        if uop.op is not UopOp.ASSERT_CMP or not uop.valid:
            return 0
        left = operand_slot(uop.src_a)
        if uop.src_a is not None and (left is None or left not in known):
            return 0
        if uop.src_b is not None:
            right_slot = operand_slot(uop.src_b)
            if right_slot is None or right_slot not in known:
                return 0
            right = known[right_slot]
        elif uop.imm is not None:
            right = uop.imm & MASK32
        else:
            return 0
        if uop.writes_flags and not ctx.flags_dead(buf, uop.slot):
            return 0
        a = known[left] if uop.src_a is not None else 0
        kind = uop.cmp_kind or UopOp.SUB
        if kind is UopOp.SUB:
            result = (a - right) & MASK32
            cf = a < right
            of = to_signed(a) - to_signed(right) != to_signed(result)
        else:
            result = a & right
            cf = of = False
        zf = result == 0
        sf = bool(result & 0x8000_0000)
        assert uop.cond is not None
        if cond_holds(uop.cond, cf=cf, zf=zf, sf=sf, of=of):
            if uop.writes_flags:
                buf.replace_flags_uses(uop.slot, uop.flags_src)
            buf.invalidate(uop.slot)
            return 1
        # Statically false: the frame would always fire; keep the assertion
        # (the constructor will stop re-dispatching such frames).
        return 0
