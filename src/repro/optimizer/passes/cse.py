"""Common-subexpression elimination, including redundant-load elimination
(paper §3.4, §6.4 "no CSE").

Value-numbers pure operations and removes later duplicates.  For loads —
the pass's primary payoff on x86, where unrolled loops re-load the same
location — a later load of a symbolically identical address is replaced
by the earlier load's value, provided no intervening store can alias.
When an intervening store's relationship is statically unknown but the
constructing execution observed no alias, the optimizer *speculates*: the
load is removed and the intervening stores are marked unsafe (§3.4).

Flag-writing duplicates are removed only when their flag consumers can be
soundly rewired: identical ops on identical operands produce identical
flag words, so flag uses of the duplicate move to the original.
"""

from __future__ import annotations

from repro.uops.uop import UopOp
from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.optuop import DefRef, OptUop
from repro.optimizer.passes.base import OptContext, Pass
from repro.optimizer.alias import AliasClass, classify_alias, observed_disjoint, same_address

_PURE_OPS = frozenset(
    {
        UopOp.LIMM,
        UopOp.ADD,
        UopOp.SUB,
        UopOp.AND,
        UopOp.OR,
        UopOp.XOR,
        UopOp.SHL,
        UopOp.SHR,
        UopOp.SAR,
        UopOp.MUL,
        UopOp.NEG,
        UopOp.NOT,
        UopOp.SEXT,
        UopOp.LEA,
    }
)


def _value_key(uop: OptUop):
    """Hashable identity of a pure op's value (operands + immediates)."""
    key = [uop.op, uop.src_a, uop.src_b, uop.imm, uop.scale, uop.size]
    if uop.writes_flags and uop.reads_flags:
        # CF flows through INC/DEC-style ops (and whole flag words through
        # possibly-zero-count shifts): the flag *output* depends on the
        # incoming flags definition, so it is part of the identity.
        key.append(("flags-in", uop.flags_src))
    return tuple(key)


class CommonSubexpression(Pass):
    name = "cse"

    def run(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        changes = 0
        changes += self._cse_alu(buf, ctx)
        changes += self._eliminate_redundant_loads(buf, ctx)
        return changes

    # ----------------------------------------------------------- ALU CSE

    def _cse_alu(self, buf: OptimizationBuffer, ctx: OptContext) -> int:
        changes = 0
        seen: dict[tuple, int] = {}
        for slot in buf.valid_slots():
            uop = buf.uops[slot]
            if uop.op not in _PURE_OPS:
                continue
            key = _value_key(uop)
            original = seen.get(key)
            if original is None or not buf.uops[original].valid:
                seen[key] = slot
                continue
            if not ctx.can_fold(buf, original, slot):
                continue
            if uop.writes_flags:
                original_uop = buf.uops[original]
                if not original_uop.writes_flags:
                    if uop.reads_flags:
                        # Flag output depends on incoming flags (INC/DEC,
                        # possibly-zero-count shifts): the original would
                        # compute it from a different flag context.
                        continue
                    # Promote the original to flag producer: identical op
                    # and operands yield the identical flag word.
                    original_uop.writes_flags = True
                # Flag consumers (and live-out) read the original instead.
                buf.replace_flags_uses(slot, original)
                uop.writes_flags = False
            buf.replace_all_uses(slot, DefRef(original))
            if ctx.value_dead(buf, slot) and ctx.flags_dead(buf, slot):
                buf.invalidate(slot)
            changes += 1
        return changes

    # ----------------------------------------------------- redundant loads

    def _eliminate_redundant_loads(
        self, buf: OptimizationBuffer, ctx: OptContext
    ) -> int:
        changes = 0
        mem_slots = buf.mem_slots()
        for position, slot in enumerate(mem_slots):
            load = buf.uops[slot]
            if not load.is_load or not load.valid:
                continue
            match = self._find_covering_load(buf, ctx, mem_slots, position)
            if match is None:
                continue
            original_slot, speculative_stores = match
            for store_slot in speculative_stores:
                store = buf.uops[store_slot]
                if not store.unsafe:
                    store.unsafe = True
                    ctx.stats.stores_marked_unsafe += 1
                store.unsafe_guards.append(original_slot)
            buf.replace_all_uses(slot, DefRef(original_slot))
            buf.invalidate(slot)
            ctx.stats.loads_removed += 1
            if speculative_stores:
                ctx.stats.loads_removed_speculatively += 1
            changes += 1
        return changes

    def _find_covering_load(
        self,
        buf: OptimizationBuffer,
        ctx: OptContext,
        mem_slots: list[int],
        position: int,
    ) -> tuple[int, list[int]] | None:
        """Walk earlier memory uops looking for an identical prior load.

        Returns (covering load slot, stores to mark unsafe) or None.
        """
        load = buf.uops[mem_slots[position]]
        speculative: list[int] = []
        for earlier_slot in reversed(mem_slots[:position]):
            earlier = buf.uops[earlier_slot]
            if not earlier.valid:
                continue
            if earlier.is_load:
                if (
                    same_address(earlier, load)
                    and earlier.sign_extend == load.sign_extend
                    and ctx.can_fold(buf, earlier_slot, load.slot)
                ):
                    return earlier_slot, speculative
                continue
            #

            verdict = classify_alias(earlier, load)
            if verdict is AliasClass.NO:
                continue
            if verdict is AliasClass.MUST:
                return None  # value changed (store forwarding's job)
            # MAY alias: speculate past it if the constructing execution
            # observed disjoint addresses, else give up.
            if ctx.speculation and observed_disjoint(earlier, load):
                speculative.append(earlier_slot)
                continue
            return None
        return None
