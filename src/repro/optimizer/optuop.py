"""The optimizer's micro-operation format (paper Figure 4).

Before optimization, every uop in a frame is *remapped* so that the uop in
buffer slot *m* writes physical register *m* (paper §4).  After remapping,
register operands are one of:

* :class:`LiveIn` — an architectural register value at frame entry
  ("Is Live In" in Figure 4);
* :class:`DefRef` — the value produced by another buffer slot (the slot
  number *is* the physical register number, so parent lookup is trivial).

Immediates live in the ``imm`` field.  Flags form a parallel def/use
chain: ``flags_src`` names the slot whose flag output this uop consumes
(``None`` = frame live-in flags).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86.instructions import Cond
from repro.uops.uop import Uop, UopOp, UReg, uop_reads_flags


@dataclass(frozen=True)
class LiveIn:
    """An architectural register value at frame entry."""

    reg: UReg

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.reg.name}.in"


@dataclass(frozen=True)
class DefRef:
    """The value defined by buffer slot ``slot`` (physical register #slot)."""

    slot: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"p{self.slot}"


Operand = LiveIn | DefRef

#: Operand-bearing fields, used by the dependency-list bookkeeping.
OPERAND_FIELDS = ("src_a", "src_b", "src_data")


@dataclass
class OptUop:
    """One slot of the optimization buffer.

    Fields mirror Figure 4 (opcode, physical/architectural registers,
    live-in/live-out marks, immediates) plus the dynamic annotations our
    trace-driven evaluation needs (observed memory address, position).
    """

    op: UopOp
    slot: int
    valid: bool = True
    src_a: Operand | None = None
    src_b: Operand | None = None
    src_data: Operand | None = None
    imm: int | None = None
    scale: int = 1
    size: int = 4
    sign_extend: bool = False
    cond: Cond | None = None
    cmp_kind: UopOp | None = None
    target: int | None = None
    writes_flags: bool = False
    preserves_cf: bool = False
    arch_dst: UReg | None = None  # architectural reg this slot's value maps to
    flags_src: int | None = None  # slot whose flags this uop reads (None=live-in)
    x86_pc: int = 0
    x86_index: int = 0  # index of owning x86 instruction within the frame
    mem_key: tuple[int, int] | None = None  # (x86_index, mem op index) for
    # locating this uop's dynamic address in any frame instance
    observed_address: int | None = None  # address in the constructing instance
    unsafe: bool = False  # unsafe store (speculative memory optimization)
    #: slots of the covering memory ops whose forwarded value this unsafe
    #: store was speculated not to clobber; a dynamic overlap with any of
    #: them aborts the frame.
    unsafe_guards: list[int] = field(default_factory=list)
    position: int = 0  # cleanup-stage ordering field (paper §4)

    @property
    def is_load(self) -> bool:
        return self.op is UopOp.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is UopOp.STORE

    @property
    def is_mem(self) -> bool:
        return self.op in (UopOp.LOAD, UopOp.STORE)

    @property
    def is_assertion(self) -> bool:
        return self.op in (UopOp.ASSERT, UopOp.ASSERT_CMP)

    @property
    def is_control(self) -> bool:
        return self.op in (UopOp.BR, UopOp.JMP, UopOp.JMPI)

    @property
    def reads_flags(self) -> bool:
        """True when this uop consumes the flags def named by flags_src.

        Delegates to :func:`repro.uops.uop.uop_reads_flags`, the single
        predicate shared with :class:`~repro.uops.uop.Uop` and the timing
        model, so the frame and ICache paths agree on flags dependences.
        """
        return uop_reads_flags(
            self.op,
            self.cond,
            self.preserves_cf,
            self.writes_flags,
            self.src_b is not None,
            self.imm,
        )

    @property
    def has_value_dst(self) -> bool:
        """Whether this slot defines a value (physical register #slot)."""
        return self.op in _VALUE_PRODUCERS

    def operands(self) -> list[tuple[str, Operand]]:
        """All (field-name, operand) pairs currently set."""
        result = []
        for name in OPERAND_FIELDS:
            value = getattr(self, name)
            if value is not None:
                result.append((name, value))
        return result

    def address_expr(self) -> tuple[Operand | None, Operand | None, int, int]:
        """Symbolic address (base, index, scale, disp) of a memory uop.

        Two memory uops refer to the same address iff their tuples are
        equal (paper §6.4: base registers symbolically the same,
        immediates and scales literally the same).
        """
        return (self.src_a, self.src_b, self.scale, self.imm or 0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_optuop(self)


_VALUE_PRODUCERS = frozenset(
    {
        UopOp.LIMM,
        UopOp.MOV,
        UopOp.ADD,
        UopOp.SUB,
        UopOp.AND,
        UopOp.OR,
        UopOp.XOR,
        UopOp.SHL,
        UopOp.SHR,
        UopOp.SAR,
        UopOp.MUL,
        UopOp.DIVQ,
        UopOp.DIVR,
        UopOp.NEG,
        UopOp.NOT,
        UopOp.SEXT,
        UopOp.LEA,
        UopOp.LOAD,
    }
)


def from_dyn_uop(uop: Uop, slot: int) -> OptUop:
    """Shallow conversion of a dynamic uop; operands are bound later."""
    return OptUop(
        op=uop.op,
        slot=slot,
        imm=uop.imm,
        scale=uop.scale,
        size=uop.size,
        sign_extend=uop.sign_extend,
        cond=uop.cond,
        cmp_kind=uop.cmp_kind,
        target=uop.target,
        writes_flags=uop.writes_flags,
        preserves_cf=uop.preserves_cf,
        x86_pc=uop.x86_pc,
        observed_address=uop.mem_address,
    )


def format_optuop(uop: OptUop) -> str:
    """Readable rendering in the style of the paper's Figure 2 columns."""

    def opnd(operand: Operand | None) -> str:
        return str(operand) if operand is not None else "?"

    def addr() -> str:
        parts = []
        if uop.src_a is not None:
            parts.append(str(uop.src_a))
        if uop.src_b is not None:
            term = str(uop.src_b)
            if uop.scale != 1:
                term += f"*{uop.scale}"
            parts.append(term)
        if uop.imm:
            parts.append(f"{uop.imm:+#x}")
        return "[" + " ".join(parts) + "]" if parts else f"[{uop.imm or 0:#x}]"

    dst = f"p{uop.slot}"
    if uop.arch_dst is not None:
        dst += f"({uop.arch_dst.name})"
    flags = ",flags" if uop.writes_flags else ""
    op = uop.op
    if op is UopOp.LOAD:
        return f"{dst} <- {addr()}"
    if op is UopOp.STORE:
        marker = " (unsafe)" if uop.unsafe else ""
        return f"{addr()} <- {opnd(uop.src_data)}{marker}"
    if op is UopOp.LIMM:
        return f"{dst}{flags} <- {uop.imm:#x}"
    if op is UopOp.MOV:
        return f"{dst}{flags} <- {opnd(uop.src_a)}"
    if op is UopOp.LEA:
        return f"{dst} <- &{addr()}"
    if op is UopOp.BR:
        return f"if ({uop.cond}) jump {uop.target:#x}" if uop.target else f"br {uop.cond}"
    if op is UopOp.JMP:
        return f"jump {uop.target:#x}"
    if op is UopOp.JMPI:
        return f"jump ({opnd(uop.src_a)})"
    if op is UopOp.ASSERT:
        return f"assert {uop.cond}"
    if op is UopOp.ASSERT_CMP:
        kind = "cmp" if uop.cmp_kind is UopOp.SUB else "test"
        right = opnd(uop.src_b) if uop.src_b is not None else f"{(uop.imm or 0):#x}"
        return f"assert {uop.cond} ({kind} {opnd(uop.src_a)}, {right})"
    if op is UopOp.NOP:
        return "nop"
    if op in (UopOp.NEG, UopOp.NOT, UopOp.SEXT):
        return f"{dst}{flags} <- {op.value} {opnd(uop.src_a)}"
    right = (
        opnd(uop.src_b)
        if uop.src_b is not None
        else (f"{uop.imm:#x}" if uop.imm is not None else "")
    )
    return f"{dst}{flags} <- {opnd(uop.src_a)} {op.value} {right}"
