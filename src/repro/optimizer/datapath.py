"""Hardware-primitive cost model for the optimizer datapath (paper §4).

The paper argues a hardware optimizer is feasible because optimization
algorithms decompose into three classes of cheap primitives:

1. dataflow-graph traversal — fetch a parent (trivial: the physical
   source register number *is* the producer's buffer index) or iterate
   children (the Dependency List structure);
2. field extraction / bit manipulation through a small ALU with a port
   into the optimization memory;
3. adding/removing instructions in the optimization buffer (removal is
   marking invalid + dependency-list cleanup; insertion is rarer, and
   memory ordering forbids inserting new loads/stores).

This module wraps an :class:`~repro.optimizer.buffer.OptimizationBuffer`
and counts primitive operations, so the per-frame optimization *work* can
be expressed in datapath operations and checked against the paper's
modeled latency of 10 cycles per incoming uop (§5.1.4).  The counters are
observability: passes run unchanged; the instrumented buffer interposes
on the operations that correspond to datapath primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.optuop import DefRef, Operand


@dataclass
class PrimitiveCounts:
    """Datapath primitive-operation tallies for one frame."""

    parent_lookups: int = 0  # Parent Logic reads
    child_iterations: int = 0  # Next Child Logic steps
    field_operations: int = 0  # optimization-datapath ALU ops
    removals: int = 0  # invalidations
    insertions: int = 0  # spare-slot insertions (rare by design)

    @property
    def total(self) -> int:
        return (
            self.parent_lookups
            + self.child_iterations
            + self.field_operations
            + self.removals
            + self.insertions
        )

    def cycles(self, ops_per_cycle: int = 1) -> int:
        """Datapath cycles at a given primitive issue rate."""
        return -(-self.total // ops_per_cycle)


class InstrumentedBuffer(OptimizationBuffer):
    """An optimization buffer that counts datapath primitives.

    Drop-in replacement: build it from the same inputs as
    :class:`OptimizationBuffer` (or via :func:`instrument`) and run any
    pass pipeline over it; read ``counts`` afterwards.
    """

    def __init__(self, *args, **kwargs) -> None:
        self.counts = PrimitiveCounts()
        self._counting = False
        super().__init__(*args, **kwargs)
        self._counting = True  # construction itself is the Remapper's job

    # -- traversal primitives ------------------------------------------

    def parent(self, operand: Operand):
        if self._counting and isinstance(operand, DefRef):
            self.counts.parent_lookups += 1
        return super().parent(operand)

    def children_of(self, slot: int):
        children = super().children_of(slot)
        if self._counting:
            self.counts.child_iterations += max(1, len(children))
        return children

    # -- field manipulation primitives ---------------------------------

    def rewrite_operand(self, slot: int, fld: str, new) -> None:
        if self._counting:
            self.counts.field_operations += 1
        super().rewrite_operand(slot, fld, new)

    def replace_all_uses(self, slot: int, new) -> int:
        count = super().replace_all_uses(slot, new)
        if self._counting:
            self.counts.field_operations += count
        return count

    def replace_flags_uses(self, slot: int, new_slot) -> int:
        count = super().replace_flags_uses(slot, new_slot)
        if self._counting:
            self.counts.field_operations += count
        return count

    # -- add/remove primitives ------------------------------------------

    def invalidate(self, slot: int) -> None:
        was_valid = self.uops[slot].valid
        super().invalidate(slot)
        if self._counting and was_valid:
            self.counts.removals += 1


def instrument(frame) -> InstrumentedBuffer:
    """Rebuild a frame's buffer as an instrumented one (for analysis)."""
    buffer = InstrumentedBuffer(
        frame.dyn_uops,
        frame.x86_indices,
        frame.mem_keys,
        block_starts=frame.block_starts,
    )
    frame.buffer = buffer
    return buffer


def check_latency_budget(
    counts: PrimitiveCounts, uops_before: int, cycles_per_uop: int = 10,
    ops_per_cycle: int = 2,
) -> bool:
    """Does the measured primitive work fit the paper's latency model?

    The paper models 10 cycles per incoming uop (§5.1.4); with a modest
    datapath issuing ``ops_per_cycle`` primitives per cycle, the work the
    software optimizer actually performed must fit inside that budget for
    the abstraction to be honest.
    """
    budget = cycles_per_uop * uops_before
    return counts.cycles(ops_per_cycle) <= budget
