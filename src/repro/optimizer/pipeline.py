"""The rePLay optimization engine: pass scheduling and statistics.

Runs the seven optimizations over a frame's optimization buffer until a
fixed point (the paper notes the passes are synergistic — reassociation
exposes CSE/SF opportunities, every pass leaves dead code for DCE).  Each
pass can be disabled individually to reproduce the Figure 10 ablation;
dead-code elimination is always enabled, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.passes.base import OptContext, PassStats
from repro.optimizer.passes.nop_removal import NopRemoval
from repro.optimizer.passes.constant_propagation import ConstantPropagation
from repro.optimizer.passes.reassociation import Reassociation
from repro.optimizer.passes.cse import CommonSubexpression
from repro.optimizer.passes.store_forwarding import StoreForwarding
from repro.optimizer.passes.value_assertion import ValueAssertion
from repro.optimizer.passes.dead_code import DeadCodeElimination
from repro.timing.config import ConfigError

#: Canonical pass-spec names, in the default pipeline order.  ``va``
#: (value assertion) is the spec name for the pass the Figure 10 legend
#: calls ASST; ``dce`` is the always-on cleanup pass (paper §6.4).
PASS_NAMES = ("nop", "cp", "ra", "cse", "sf", "va", "dce")

#: Accepted aliases (the Figure 10 legend spells value assertion ASST).
PASS_ALIASES = {"asst": "va"}

_PASS_CLASSES = {
    "nop": NopRemoval,
    "cp": ConstantPropagation,
    "ra": Reassociation,
    "cse": CommonSubexpression,
    "sf": StoreForwarding,
    "va": ValueAssertion,
    "dce": DeadCodeElimination,
}


def parse_pass_spec(spec: str) -> tuple[str, ...]:
    """Parse ``"nop,cp,ra,cse,sf,va,dce"`` into canonical pass names.

    Order is preserved (an explicit spec *is* the pipeline order).
    Unknown names, duplicates (after alias resolution), and specs
    missing the mandatory ``dce`` terminal raise :class:`ConfigError`
    naming ``optimizer.pass_spec``.
    """
    names: list[str] = []
    for raw in spec.split(","):
        token = raw.strip()
        if not token:
            raise ConfigError(
                "optimizer.pass_spec", f"empty pass name in {spec!r}"
            )
        name = PASS_ALIASES.get(token, token)
        if name not in _PASS_CLASSES:
            raise ConfigError(
                "optimizer.pass_spec",
                f"unknown pass {token!r} (choose from "
                f"{', '.join(PASS_NAMES)}; 'asst' is an alias for 'va')",
            )
        if name in names:
            raise ConfigError(
                "optimizer.pass_spec", f"duplicate pass {token!r} in {spec!r}"
            )
        names.append(name)
    if "dce" not in names:
        raise ConfigError(
            "optimizer.pass_spec",
            f"'dce' is always enabled (paper §6.4) and must appear in the "
            f"spec, got {spec!r}",
        )
    return tuple(names)


def format_pass_spec(names: tuple[str, ...] | list[str]) -> str:
    """Inverse of :func:`parse_pass_spec`: canonical comma-joined form."""
    return ",".join(names)


@dataclass
class OptimizerConfig:
    """Optimization-engine configuration.

    The six optional passes correspond to the Figure 10 ablation legend:
    ASST, CP, CSE, NOP, RA, SF.  ``scope`` selects frame-level vs
    intra-block optimization (Figure 9).  ``speculation`` enables the
    unsafe-store memory optimizations (§3.4).
    """

    enable_nop: bool = True
    enable_cp: bool = True
    enable_cse: bool = True
    enable_ra: bool = True
    enable_sf: bool = True
    enable_asst: bool = True
    speculation: bool = True
    scope: str = "frame"  # 'frame' | 'inter' | 'block'
    max_iterations: int = 4
    # Hardware-model parameters (paper §5.1.4): a pipelined optimizer with
    # a variable latency of 10 cycles per uop and depth 3.
    cycles_per_uop: int = 10
    pipeline_depth: int = 3
    #: Explicit pass subset *and order* as a spec string (e.g.
    #: ``"nop,cp,ra,cse,sf,va,dce"``).  ``None`` keeps the enable_* flag
    #: behavior (default order).  When set, the flags are ignored; the
    #: spec is part of the dataclass, so it lands in the experiment
    #: fingerprint and differently-ordered sweeps never alias in the
    #: artifact store.
    pass_spec: str | None = None

    def resolved_pass_names(self) -> tuple[str, ...]:
        """The ordered pass names this configuration runs."""
        if self.pass_spec is not None:
            return parse_pass_spec(self.pass_spec)
        flags = (
            ("nop", self.enable_nop),
            ("cp", self.enable_cp),
            ("ra", self.enable_ra),
            ("cse", self.enable_cse),
            ("sf", self.enable_sf),
            ("va", self.enable_asst),
        )
        return tuple(name for name, on in flags if on) + ("dce",)

    def disabled(self, name: str) -> "OptimizerConfig":
        """Copy with one optimization turned off (Figure 10 trials)."""
        from dataclasses import replace

        flag = {
            "asst": "enable_asst",
            "cp": "enable_cp",
            "cse": "enable_cse",
            "nop": "enable_nop",
            "ra": "enable_ra",
            "sf": "enable_sf",
        }[name]
        return replace(self, **{flag: False})


@dataclass
class OptimizationResult:
    """Outcome of optimizing one frame."""

    uops_before: int
    uops_after: int
    loads_before: int
    loads_after: int
    stats: PassStats
    optimization_cycles: int = 0

    @property
    def uops_removed(self) -> int:
        return self.uops_before - self.uops_after

    @property
    def loads_removed(self) -> int:
        return self.loads_before - self.loads_after

    @property
    def reduction(self) -> float:
        if not self.uops_before:
            return 0.0
        return self.uops_removed / self.uops_before


class FrameOptimizer:
    """Applies the optimization passes to frames.

    ``metrics`` (a :class:`repro.metrics.MetricsRegistry`, optional) is
    handed to each pass invocation so per-pass change counters accumulate
    live; with ``None`` the hook costs nothing.
    """

    def __init__(
        self, config: OptimizerConfig | None = None, metrics=None
    ) -> None:
        self.config = config or OptimizerConfig()
        self.metrics = metrics
        self._passes = self._build_passes()

    def _build_passes(self) -> list:
        # resolved_pass_names() ends with (or, via an explicit spec,
        # contains) 'dce' — dead-code elimination is always enabled, as
        # in the paper (§6.4); parse_pass_spec rejects specs without it.
        return [
            _PASS_CLASSES[name]()
            for name in self.config.resolved_pass_names()
        ]

    def optimize(self, buffer: OptimizationBuffer) -> OptimizationResult:
        """Run the pass pipeline on a remapped frame to a fixed point."""
        ctx = OptContext(
            scope=self.config.scope,
            speculation=self.config.speculation,
            metrics=self.metrics,
        )
        uops_before = buffer.valid_count()
        loads_before = buffer.load_count()
        for _ in range(self.config.max_iterations):
            ctx.stats.iterations += 1
            total = 0
            for pass_obj in self._passes:
                total += pass_obj(buffer, ctx)
            if not total:
                break
        return OptimizationResult(
            uops_before=uops_before,
            uops_after=buffer.valid_count(),
            loads_before=loads_before,
            loads_after=buffer.load_count(),
            stats=ctx.stats,
            optimization_cycles=self.config.cycles_per_uop * uops_before,
        )
