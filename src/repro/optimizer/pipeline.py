"""The rePLay optimization engine: pass scheduling and statistics.

Runs the seven optimizations over a frame's optimization buffer until a
fixed point (the paper notes the passes are synergistic — reassociation
exposes CSE/SF opportunities, every pass leaves dead code for DCE).  Each
pass can be disabled individually to reproduce the Figure 10 ablation;
dead-code elimination is always enabled, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.passes.base import OptContext, PassStats
from repro.optimizer.passes.nop_removal import NopRemoval
from repro.optimizer.passes.constant_propagation import ConstantPropagation
from repro.optimizer.passes.reassociation import Reassociation
from repro.optimizer.passes.cse import CommonSubexpression
from repro.optimizer.passes.store_forwarding import StoreForwarding
from repro.optimizer.passes.value_assertion import ValueAssertion
from repro.optimizer.passes.dead_code import DeadCodeElimination


@dataclass
class OptimizerConfig:
    """Optimization-engine configuration.

    The six optional passes correspond to the Figure 10 ablation legend:
    ASST, CP, CSE, NOP, RA, SF.  ``scope`` selects frame-level vs
    intra-block optimization (Figure 9).  ``speculation`` enables the
    unsafe-store memory optimizations (§3.4).
    """

    enable_nop: bool = True
    enable_cp: bool = True
    enable_cse: bool = True
    enable_ra: bool = True
    enable_sf: bool = True
    enable_asst: bool = True
    speculation: bool = True
    scope: str = "frame"  # 'frame' | 'inter' | 'block'
    max_iterations: int = 4
    # Hardware-model parameters (paper §5.1.4): a pipelined optimizer with
    # a variable latency of 10 cycles per uop and depth 3.
    cycles_per_uop: int = 10
    pipeline_depth: int = 3

    def disabled(self, name: str) -> "OptimizerConfig":
        """Copy with one optimization turned off (Figure 10 trials)."""
        from dataclasses import replace

        flag = {
            "asst": "enable_asst",
            "cp": "enable_cp",
            "cse": "enable_cse",
            "nop": "enable_nop",
            "ra": "enable_ra",
            "sf": "enable_sf",
        }[name]
        return replace(self, **{flag: False})


@dataclass
class OptimizationResult:
    """Outcome of optimizing one frame."""

    uops_before: int
    uops_after: int
    loads_before: int
    loads_after: int
    stats: PassStats
    optimization_cycles: int = 0

    @property
    def uops_removed(self) -> int:
        return self.uops_before - self.uops_after

    @property
    def loads_removed(self) -> int:
        return self.loads_before - self.loads_after

    @property
    def reduction(self) -> float:
        if not self.uops_before:
            return 0.0
        return self.uops_removed / self.uops_before


class FrameOptimizer:
    """Applies the optimization passes to frames.

    ``metrics`` (a :class:`repro.metrics.MetricsRegistry`, optional) is
    handed to each pass invocation so per-pass change counters accumulate
    live; with ``None`` the hook costs nothing.
    """

    def __init__(
        self, config: OptimizerConfig | None = None, metrics=None
    ) -> None:
        self.config = config or OptimizerConfig()
        self.metrics = metrics
        self._passes = self._build_passes()

    def _build_passes(self) -> list:
        cfg = self.config
        passes = []
        if cfg.enable_nop:
            passes.append(NopRemoval())
        if cfg.enable_cp:
            passes.append(ConstantPropagation())
        if cfg.enable_ra:
            passes.append(Reassociation())
        if cfg.enable_cse:
            passes.append(CommonSubexpression())
        if cfg.enable_sf:
            passes.append(StoreForwarding())
        if cfg.enable_asst:
            passes.append(ValueAssertion())
        passes.append(DeadCodeElimination())  # always enabled (paper §6.4)
        return passes

    def optimize(self, buffer: OptimizationBuffer) -> OptimizationResult:
        """Run the pass pipeline on a remapped frame to a fixed point."""
        ctx = OptContext(
            scope=self.config.scope,
            speculation=self.config.speculation,
            metrics=self.metrics,
        )
        uops_before = buffer.valid_count()
        loads_before = buffer.load_count()
        for _ in range(self.config.max_iterations):
            ctx.stats.iterations += 1
            total = 0
            for pass_obj in self._passes:
                total += pass_obj(buffer, ctx)
            if not total:
                break
        return OptimizationResult(
            uops_before=uops_before,
            uops_after=buffer.valid_count(),
            loads_before=loads_before,
            loads_after=buffer.load_count(),
            stats=ctx.stats,
            optimization_cycles=self.config.cycles_per_uop * uops_before,
        )
