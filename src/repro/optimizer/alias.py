"""Memory-aliasing analysis for the optimizer.

Two memory uops are *symbolically equivalent* when their base and index
operands are the same symbols and their scales and displacements are
literally equal (paper §6.4).  When base symbols differ, nothing can be
proved statically; the optimizer may then *speculate* using the aliasing
behaviour observed in the frame's constructing execution (paper §3.4),
marking the bypassed stores as unsafe stores.
"""

from __future__ import annotations

import enum

from repro.optimizer.optuop import OptUop


class AliasClass(enum.Enum):
    """Verdict of the static alias test between two memory uops."""

    NO = "no"  # provably disjoint
    MUST = "must"  # provably overlapping
    MAY = "may"  # statically unknown


def classify_alias(a: OptUop, b: OptUop) -> AliasClass:
    """Static alias classification of two memory uops."""
    base_a, index_a, scale_a, disp_a = a.address_expr()
    base_b, index_b, scale_b, disp_b = b.address_expr()
    same_symbols = base_a == base_b and index_a == index_b and (
        index_a is None or scale_a == scale_b
    )
    if same_symbols:
        if _ranges_overlap(disp_a, a.size, disp_b, b.size):
            return AliasClass.MUST
        return AliasClass.NO
    return AliasClass.MAY


def same_address(a: OptUop, b: OptUop) -> bool:
    """Symbolic same-address test (paper's equivalence rule)."""
    return a.address_expr() == b.address_expr() and a.size == b.size


def observed_disjoint(a: OptUop, b: OptUop) -> bool:
    """Did the two uops touch disjoint bytes in the constructing execution?

    This is the trace-derived aliasing information that licenses
    speculative store forwarding / redundant-load elimination.
    """
    if a.observed_address is None or b.observed_address is None:
        return False
    return not _ranges_overlap(a.observed_address, a.size, b.observed_address, b.size)


def _ranges_overlap(start_a: int, size_a: int, start_b: int, size_b: int) -> bool:
    return start_a < start_b + size_b and start_b < start_a + size_a
