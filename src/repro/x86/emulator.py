"""Functional emulator for the x86 subset.

The emulator plays the role of the hardware that generated the paper's
trace files: it executes a :class:`~repro.x86.assembler.Program` and emits
one :class:`~repro.trace.record.TraceRecord` per retired instruction,
carrying register state changes and memory transactions (paper §5.1.1).

Flag semantics follow IA-32 for the modeled flags (CF, ZF, SF, OF) with
two documented determinism choices: shifts clear OF, and IMUL sets ZF/SF
from the low result (IA-32 leaves them undefined; traces need a value).
"""

from __future__ import annotations

from repro.trace.record import MemOp, TraceRecord
from repro.x86.assembler import Program
from repro.x86.instructions import (
    Cond,
    Imm,
    Instruction,
    Label,
    Mem,
    Mnemonic,
    cond_holds,
)
from repro.x86.memory import Memory
from repro.x86.registers import MASK32, NUM_REGS, Reg, pack_flags, to_signed

#: Jumping here terminates the program (workloads end with ``jmp``/``ret``
#: to this address).
EXIT_ADDRESS = 0xDEAD0000

#: Default initial stack top (grows down).
DEFAULT_STACK_TOP = 0x00F0_0000


class EmulationError(Exception):
    """Raised for faults: bad fetch, division by zero, etc."""


class Emulator:
    """Executes a program instruction-by-instruction, recording a trace."""

    def __init__(self, program: Program, stack_top: int = DEFAULT_STACK_TOP) -> None:
        self.program = program
        self.memory = Memory()
        self.regs: list[int] = [0] * NUM_REGS
        self.cf = self.zf = self.sf = self.of = False
        self.pc = program.entry
        self.instruction_count = 0
        self.regs[Reg.ESP] = stack_top
        for address, blob in program.data.items():
            self.memory.write_bytes(address, blob)
        # Entering EXIT_ADDRESS via RET requires a pushed return address.
        self._push_value(EXIT_ADDRESS)

    # ------------------------------------------------------------ helpers

    def _push_value(self, value: int) -> None:
        self.regs[Reg.ESP] = (self.regs[Reg.ESP] - 4) & MASK32
        self.memory.write(self.regs[Reg.ESP], value, 4)

    def flags_word(self) -> int:
        """Pack the current flags into an EFLAGS-style word."""
        return pack_flags(self.cf, self.zf, self.sf, self.of)

    def reg_snapshot(self) -> tuple[int, ...]:
        """Copy of the architectural register file."""
        return tuple(self.regs)

    def mem_address(self, operand: Mem) -> int:
        """Effective address of a memory operand under current registers."""
        address = operand.disp
        if operand.base is not None:
            address += self.regs[operand.base]
        if operand.index is not None:
            address += self.regs[operand.index] * operand.scale
        return address & MASK32

    def _set_zf_sf(self, result: int) -> None:
        self.zf = result == 0
        self.sf = bool(result & 0x8000_0000)

    # --------------------------------------------------------------- step

    @property
    def halted(self) -> bool:
        return self.pc == EXIT_ADDRESS

    def step(self) -> TraceRecord:
        """Execute one instruction and return its trace record."""
        if self.halted:
            raise EmulationError("program has exited")
        try:
            instr = self.program.at(self.pc)
        except KeyError as exc:
            raise EmulationError(f"no instruction at {self.pc:#x}") from exc

        regs_before = list(self.regs)
        flags_before = self.flags_word()
        mem_ops: list[MemOp] = []
        self._mem_ops = mem_ops
        next_pc = instr.address + instr.length
        branch_taken: bool | None = None

        next_pc, branch_taken = self._execute(instr, next_pc)

        reg_writes = {
            Reg(i): self.regs[i]
            for i in range(NUM_REGS)
            if self.regs[i] != regs_before[i]
        }
        # Instructions that rewrite a register with the same value still
        # architecturally write it; detect via the writes_reg set.
        for reg in _written_regs(instr):
            reg_writes.setdefault(reg, self.regs[reg])
        flags_after = self.flags_word()
        record = TraceRecord(
            pc=instr.address,
            instruction=instr,
            next_pc=next_pc,
            reg_writes=reg_writes,
            flags_after=flags_after if _writes_flags(instr) or flags_after != flags_before else None,
            mem_ops=tuple(mem_ops),
            branch_taken=branch_taken,
        )
        self.pc = next_pc
        self.instruction_count += 1
        return record

    def run(self, max_instructions: int = 1_000_000) -> list[TraceRecord]:
        """Run until exit or the instruction budget; return the trace."""
        trace: list[TraceRecord] = []
        while not self.halted and len(trace) < max_instructions:
            trace.append(self.step())
        return trace

    # ---------------------------------------------------------- operands

    def _read(self, operand, size_hint: int = 4) -> int:
        if isinstance(operand, Reg):
            return self.regs[operand]
        if isinstance(operand, Imm):
            return operand.value & MASK32
        if isinstance(operand, Mem):
            address = self.mem_address(operand)
            value = self.memory.read(address, operand.size)
            self._mem_ops.append(
                MemOp(is_store=False, address=address, size=operand.size, data=value)
            )
            return value
        raise EmulationError(f"cannot read operand {operand!r}")

    def _write(self, operand, value: int) -> None:
        value &= MASK32
        if isinstance(operand, Reg):
            self.regs[operand] = value
            return
        if isinstance(operand, Mem):
            address = self.mem_address(operand)
            stored = value & ((1 << (8 * operand.size)) - 1)
            self.memory.write(address, stored, operand.size)
            self._mem_ops.append(
                MemOp(is_store=True, address=address, size=operand.size, data=stored)
            )
            return
        raise EmulationError(f"cannot write operand {operand!r}")

    def _target(self, instr: Instruction, operand) -> int:
        if isinstance(operand, Label):
            return instr.label_targets[operand.name]
        return self._read(operand)

    # ---------------------------------------------------------- execute

    def _execute(self, instr: Instruction, next_pc: int) -> tuple[int, bool | None]:
        mnem = instr.mnemonic
        ops = instr.operands
        branch_taken: bool | None = None

        if mnem is Mnemonic.NOP:
            pass
        elif mnem is Mnemonic.MOV:
            self._write(ops[0], self._read(ops[1]))
        elif mnem in (Mnemonic.MOVZX, Mnemonic.MOVSX):
            src = ops[1]
            if not isinstance(src, Mem):
                # Keeps the emulator honest about the same contract the
                # uop translator enforces (LOAD with extension).
                raise EmulationError(
                    f"{mnem.name} requires a memory source, got {src!r}"
                )
            raw = self._read(src) & ((1 << (8 * src.size)) - 1)
            if mnem is Mnemonic.MOVSX:
                raw = to_signed(raw, 8 * src.size) & MASK32
            self._write(ops[0], raw)
        elif mnem is Mnemonic.LEA:
            self._write(ops[0], self.mem_address(ops[1]))  # no memory access
        elif mnem in (Mnemonic.ADD, Mnemonic.SUB, Mnemonic.CMP):
            a = self._read(ops[0])
            b = self._read(ops[1])
            if mnem is Mnemonic.ADD:
                result = (a + b) & MASK32
                self.cf = a + b > MASK32
                self.of = to_signed(a) + to_signed(b) != to_signed(result)
            else:
                result = (a - b) & MASK32
                self.cf = a < b
                self.of = to_signed(a) - to_signed(b) != to_signed(result)
            self._set_zf_sf(result)
            if mnem is not Mnemonic.CMP:
                self._write(ops[0], result)
        elif mnem in (Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR, Mnemonic.TEST):
            a = self._read(ops[0])
            b = self._read(ops[1])
            if mnem in (Mnemonic.AND, Mnemonic.TEST):
                result = a & b
            elif mnem is Mnemonic.OR:
                result = a | b
            else:
                result = a ^ b
            self.cf = self.of = False
            self._set_zf_sf(result)
            if mnem not in (Mnemonic.TEST,):
                self._write(ops[0], result)
        elif mnem in (Mnemonic.INC, Mnemonic.DEC):
            a = self._read(ops[0])
            delta = 1 if mnem is Mnemonic.INC else -1
            result = (a + delta) & MASK32
            self.of = to_signed(a) + delta != to_signed(result)
            self._set_zf_sf(result)  # CF is preserved by INC/DEC
            self._write(ops[0], result)
        elif mnem is Mnemonic.NEG:
            a = self._read(ops[0])
            result = (-a) & MASK32
            self.cf = a != 0
            self.of = a == 0x8000_0000
            self._set_zf_sf(result)
            self._write(ops[0], result)
        elif mnem is Mnemonic.NOT:
            self._write(ops[0], (~self._read(ops[0])) & MASK32)
        elif mnem is Mnemonic.IMUL:
            a = to_signed(self._read(ops[0]))
            b = to_signed(self._read(ops[1]))
            full = a * b
            result = full & MASK32
            self.cf = self.of = to_signed(result) != full
            self._set_zf_sf(result)  # deterministic choice; IA-32 undefined
            self._write(ops[0], result)
        elif mnem is Mnemonic.IDIV:
            divisor = to_signed(self._read(ops[0]))
            if divisor == 0:
                raise EmulationError(f"division by zero at {instr.address:#x}")
            dividend = to_signed(
                (self.regs[Reg.EDX] << 32) | self.regs[Reg.EAX], bits=64
            )
            quotient = int(dividend / divisor)  # truncates toward zero
            remainder = dividend - quotient * divisor
            self.regs[Reg.EAX] = quotient & MASK32
            self.regs[Reg.EDX] = remainder & MASK32
        elif mnem is Mnemonic.CDQ:
            self.regs[Reg.EDX] = MASK32 if self.regs[Reg.EAX] & 0x8000_0000 else 0
        elif mnem in (Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR):
            a = self._read(ops[0])
            count = self._read(ops[1]) & 0x1F
            if count:
                if mnem is Mnemonic.SHL:
                    result = (a << count) & MASK32
                    self.cf = bool((a >> (32 - count)) & 1)
                elif mnem is Mnemonic.SHR:
                    result = a >> count
                    self.cf = bool((a >> (count - 1)) & 1)
                else:
                    result = (to_signed(a) >> count) & MASK32
                    self.cf = bool((to_signed(a) >> (count - 1)) & 1)
                self.of = False  # deterministic choice; IA-32: defined for count 1
                self._set_zf_sf(result)
                self._write(ops[0], result)
        elif mnem is Mnemonic.PUSH:
            value = self._read(ops[0])
            new_esp = (self.regs[Reg.ESP] - 4) & MASK32
            self.memory.write(new_esp, value, 4)
            self._mem_ops.append(
                MemOp(is_store=True, address=new_esp, size=4, data=value)
            )
            self.regs[Reg.ESP] = new_esp
        elif mnem is Mnemonic.POP:
            esp = self.regs[Reg.ESP]
            value = self.memory.read(esp, 4)
            self._mem_ops.append(MemOp(is_store=False, address=esp, size=4, data=value))
            self.regs[Reg.ESP] = (esp + 4) & MASK32
            self._write(ops[0], value)
        elif mnem is Mnemonic.CALL:
            target = self._target(instr, ops[0])
            retaddr = next_pc
            new_esp = (self.regs[Reg.ESP] - 4) & MASK32
            self.memory.write(new_esp, retaddr, 4)
            self._mem_ops.append(
                MemOp(is_store=True, address=new_esp, size=4, data=retaddr)
            )
            self.regs[Reg.ESP] = new_esp
            next_pc = target
        elif mnem is Mnemonic.RET:
            esp = self.regs[Reg.ESP]
            target = self.memory.read(esp, 4)
            self._mem_ops.append(
                MemOp(is_store=False, address=esp, size=4, data=target)
            )
            self.regs[Reg.ESP] = (esp + 4) & MASK32
            next_pc = target
        elif mnem is Mnemonic.JMP:
            next_pc = self._target(instr, ops[0])
        elif mnem is Mnemonic.JCC:
            assert instr.cond is not None
            taken = cond_holds(
                instr.cond, cf=self.cf, zf=self.zf, sf=self.sf, of=self.of
            )
            branch_taken = taken
            if taken:
                next_pc = self._target(instr, ops[0])
        else:  # pragma: no cover - exhaustive over Mnemonic
            raise EmulationError(f"unimplemented mnemonic {mnem}")
        return next_pc, branch_taken


def _writes_flags(instr: Instruction) -> bool:
    """Whether the instruction architecturally writes any modeled flag."""
    return instr.mnemonic in (
        Mnemonic.ADD,
        Mnemonic.SUB,
        Mnemonic.CMP,
        Mnemonic.AND,
        Mnemonic.OR,
        Mnemonic.XOR,
        Mnemonic.TEST,
        Mnemonic.INC,
        Mnemonic.DEC,
        Mnemonic.NEG,
        Mnemonic.IMUL,
        Mnemonic.SHL,
        Mnemonic.SHR,
        Mnemonic.SAR,
    )


def _written_regs(instr: Instruction) -> tuple[Reg, ...]:
    """Registers an instruction architecturally writes (value may be unchanged)."""
    mnem = instr.mnemonic
    ops = instr.operands
    regs: list[Reg] = []
    if mnem in (Mnemonic.PUSH, Mnemonic.POP, Mnemonic.CALL, Mnemonic.RET):
        regs.append(Reg.ESP)
    if mnem is Mnemonic.POP and isinstance(ops[0], Reg):
        regs.append(ops[0])
    if mnem is Mnemonic.IDIV:
        regs.extend((Reg.EAX, Reg.EDX))
    if mnem is Mnemonic.CDQ:
        regs.append(Reg.EDX)
    if mnem in (
        Mnemonic.MOV,
        Mnemonic.MOVZX,
        Mnemonic.MOVSX,
        Mnemonic.LEA,
        Mnemonic.ADD,
        Mnemonic.SUB,
        Mnemonic.AND,
        Mnemonic.OR,
        Mnemonic.XOR,
        Mnemonic.INC,
        Mnemonic.DEC,
        Mnemonic.NEG,
        Mnemonic.NOT,
        Mnemonic.IMUL,
        Mnemonic.SHL,
        Mnemonic.SHR,
        Mnemonic.SAR,
    ) and ops and isinstance(ops[0], Reg):
        regs.append(ops[0])
    return tuple(dict.fromkeys(regs))
