"""x86-subset substrate: registers, instructions, assembler, emulator."""

from repro.x86.assembler import Assembler, AssemblyError, Program, mem
from repro.x86.emulator import EXIT_ADDRESS, EmulationError, Emulator
from repro.x86.instructions import Cond, Imm, Instruction, Label, Mem, Mnemonic
from repro.x86.memory import Memory
from repro.x86.registers import ALL_FLAGS, ALL_REGS, Flag, Reg

__all__ = [
    "ALL_FLAGS",
    "ALL_REGS",
    "Assembler",
    "AssemblyError",
    "Cond",
    "EXIT_ADDRESS",
    "EmulationError",
    "Emulator",
    "Flag",
    "Imm",
    "Instruction",
    "Label",
    "Mem",
    "Memory",
    "Mnemonic",
    "Program",
    "Reg",
    "mem",
]
