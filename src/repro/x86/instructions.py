"""Instruction and operand model for the x86 subset.

Instructions are held in a decoded, structured form rather than as machine
bytes: the paper's trace files carried disassembled instruction data, so
the simulator never needs a binary encoding.  Each instruction does carry
a realistic *encoded length* (computed by the assembler) so that
instruction-cache behaviour is meaningful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.x86.registers import Reg


class Mnemonic(enum.Enum):
    """Supported x86-subset mnemonics."""

    MOV = "mov"
    MOVZX = "movzx"
    MOVSX = "movsx"
    LEA = "lea"
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    CMP = "cmp"
    TEST = "test"
    INC = "inc"
    DEC = "dec"
    NEG = "neg"
    NOT = "not"
    IMUL = "imul"
    IDIV = "idiv"
    CDQ = "cdq"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    PUSH = "push"
    POP = "pop"
    CALL = "call"
    RET = "ret"
    JMP = "jmp"
    JCC = "jcc"
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Cond(enum.Enum):
    """Condition codes for Jcc (and for uop-level branches/assertions)."""

    Z = "z"
    NZ = "nz"
    L = "l"
    GE = "ge"
    LE = "le"
    G = "g"
    B = "b"
    AE = "ae"
    BE = "be"
    A = "a"
    S = "s"
    NS = "ns"

    def inverse(self) -> "Cond":
        """Return the condition that is true exactly when self is false."""
        return _COND_INVERSE[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_COND_INVERSE = {
    Cond.Z: Cond.NZ,
    Cond.NZ: Cond.Z,
    Cond.L: Cond.GE,
    Cond.GE: Cond.L,
    Cond.LE: Cond.G,
    Cond.G: Cond.LE,
    Cond.B: Cond.AE,
    Cond.AE: Cond.B,
    Cond.BE: Cond.A,
    Cond.A: Cond.BE,
    Cond.S: Cond.NS,
    Cond.NS: Cond.S,
}


def cond_holds(cond: Cond, *, cf: bool, zf: bool, sf: bool, of: bool) -> bool:
    """Evaluate a condition code against flag values (IA-32 semantics)."""
    if cond is Cond.Z:
        return zf
    if cond is Cond.NZ:
        return not zf
    if cond is Cond.L:
        return sf != of
    if cond is Cond.GE:
        return sf == of
    if cond is Cond.LE:
        return zf or (sf != of)
    if cond is Cond.G:
        return not zf and (sf == of)
    if cond is Cond.B:
        return cf
    if cond is Cond.AE:
        return not cf
    if cond is Cond.BE:
        return cf or zf
    if cond is Cond.A:
        return not cf and not zf
    if cond is Cond.S:
        return sf
    if cond is Cond.NS:
        return not sf
    raise ValueError(f"unknown condition {cond!r}")


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:#x}" if abs(self.value) > 9 else str(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base + index*scale + disp]`` of a given size.

    ``size`` is the access width in bytes (1, 2, or 4).
    """

    base: Reg | None = None
    index: Reg | None = None
    scale: int = 1
    disp: int = 0
    size: int = 4

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")
        if self.size not in (1, 2, 4):
            raise ValueError(f"invalid access size {self.size}")
        if self.base is None and self.index is None and self.disp == 0:
            raise ValueError("memory operand needs a base, index, or disp")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            term = self.index.name
            if self.scale != 1:
                term += f"*{self.scale}"
            parts.append(term)
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}")
        return "[" + " + ".join(parts) + "]"


@dataclass(frozen=True)
class Label:
    """A symbolic code label, resolved to an address by the assembler."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


Operand = Reg | Imm | Mem | Label


@dataclass
class Instruction:
    """One decoded x86-subset instruction.

    ``operands`` follows Intel order (destination first).  ``cond`` is only
    meaningful for :data:`Mnemonic.JCC`.  ``address`` and ``length`` are
    assigned by the assembler; ``length`` approximates a realistic IA-32
    encoding size so the instruction cache sees plausible footprints.
    """

    mnemonic: Mnemonic
    operands: tuple[Operand, ...] = ()
    cond: Cond | None = None
    address: int = 0
    length: int = 0
    label_targets: dict[str, int] = field(default_factory=dict, repr=False)

    @property
    def is_branch(self) -> bool:
        """True for any control-transfer instruction."""
        return self.mnemonic in (
            Mnemonic.JCC,
            Mnemonic.JMP,
            Mnemonic.CALL,
            Mnemonic.RET,
        )

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic is Mnemonic.JCC

    @property
    def is_indirect(self) -> bool:
        """True when the control-transfer target comes from a register/memory."""
        if self.mnemonic is Mnemonic.RET:
            return True
        if self.mnemonic in (Mnemonic.JMP, Mnemonic.CALL):
            return bool(self.operands) and not isinstance(self.operands[0], Label)
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        name = self.mnemonic.value
        if self.mnemonic is Mnemonic.JCC:
            name = f"j{self.cond.value}" if self.cond else "jcc"
        ops = ", ".join(
            op.name if isinstance(op, Reg) else str(op) for op in self.operands
        )
        return f"{name} {ops}".strip()


def estimate_length(instr: Instruction) -> int:
    """Estimate a realistic IA-32 encoding length for ``instr``.

    This does not aim to be exact; it reproduces the statistical flavour of
    x86 code (1-byte push/pop, multi-byte memory forms) so that the ICache
    model sees plausible line occupancy.
    """
    mnem = instr.mnemonic
    if mnem is Mnemonic.NOP:
        return 1
    if mnem in (Mnemonic.PUSH, Mnemonic.POP):
        op = instr.operands[0] if instr.operands else None
        if isinstance(op, Reg):
            return 1
        if isinstance(op, Imm):
            return 2 if -128 <= op.value <= 127 else 5
        return 3
    if mnem is Mnemonic.RET:
        return 1
    if mnem is Mnemonic.CDQ:
        return 1
    if mnem in (Mnemonic.INC, Mnemonic.DEC):
        return 1 if isinstance(instr.operands[0], Reg) else 3

    length = 1  # opcode byte
    if mnem in (Mnemonic.MOVZX, Mnemonic.MOVSX, Mnemonic.IMUL, Mnemonic.JCC):
        length += 1  # two-byte opcode space (0F xx) / jcc rel32 opcode
    has_modrm = mnem not in (Mnemonic.JMP, Mnemonic.CALL, Mnemonic.JCC)
    if has_modrm:
        length += 1
    for op in instr.operands:
        if isinstance(op, Mem):
            if op.index is not None:
                length += 1  # SIB byte
            if op.disp == 0 and op.base not in (None, Reg.EBP):
                pass
            elif -128 <= op.disp <= 127:
                length += 1
            else:
                length += 4
            if op.base is None and op.index is None:
                length += 4
        elif isinstance(op, Imm):
            length += 1 if -128 <= op.value <= 127 else 4
        elif isinstance(op, Label):
            length += 4  # rel32
    return length
