"""A small assembler DSL for building x86-subset programs.

Workloads are written directly against this API::

    asm = Assembler()
    asm.label("loop")
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=4))
    asm.add(Reg.EAX, Imm(1))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    program = asm.assemble()

The assembler lays instructions out at realistic byte addresses (using the
encoded-length estimator) and resolves label references, producing a
:class:`Program` the functional emulator can run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86.instructions import (
    Cond,
    Imm,
    Instruction,
    Label,
    Mem,
    Mnemonic,
    Operand,
    estimate_length,
)
from repro.x86.registers import Reg


class AssemblyError(Exception):
    """Raised for malformed programs (duplicate or undefined labels, etc.)."""


def mem(
    base: Reg | None = None,
    index: Reg | None = None,
    scale: int = 1,
    disp: int = 0,
    size: int = 4,
) -> Mem:
    """Convenience constructor for memory operands."""
    return Mem(base=base, index=index, scale=scale, disp=disp, size=size)


@dataclass
class Program:
    """An assembled program: instructions at addresses, plus initial data."""

    instructions: dict[int, Instruction]
    entry: int
    labels: dict[str, int]
    data: dict[int, bytes] = field(default_factory=dict)
    code_size: int = 0

    def at(self, address: int) -> Instruction:
        """Fetch the instruction at ``address`` (KeyError if none)."""
        return self.instructions[address]

    def __len__(self) -> int:
        return len(self.instructions)


class Assembler:
    """Accumulates instructions and data, then resolves them into a Program."""

    def __init__(self, base_address: int = 0x0040_1000) -> None:
        self._base = base_address
        self._items: list[Instruction | str] = []
        self._data: dict[int, bytes] = {}
        self._entry_label: str | None = None

    # ---------------------------------------------------------------- core

    def emit(
        self,
        mnemonic: Mnemonic,
        *operands: Operand | str,
        cond: Cond | None = None,
    ) -> Instruction:
        """Append an instruction; string operands are label references."""
        resolved: list[Operand] = []
        for op in operands:
            resolved.append(Label(op) if isinstance(op, str) else op)
        instr = Instruction(mnemonic=mnemonic, operands=tuple(resolved), cond=cond)
        self._items.append(instr)
        return instr

    def label(self, name: str) -> None:
        """Define a code label at the current position."""
        self._items.append(name)

    def entry(self, name: str) -> None:
        """Set the program entry point to a label (default: first instruction)."""
        self._entry_label = name

    def data_bytes(self, address: int, data: bytes) -> None:
        """Declare initial memory contents at an absolute address."""
        self._data[address] = data

    def data_words(self, address: int, words: list[int]) -> None:
        """Declare initial memory contents as little-endian 32-bit words."""
        blob = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
        self.data_bytes(address, blob)

    def assemble(self) -> Program:
        """Resolve labels and produce the final :class:`Program`."""
        # First pass: assign addresses.
        labels: dict[str, int] = {}
        address = self._base
        for item in self._items:
            if isinstance(item, str):
                if item in labels:
                    raise AssemblyError(f"duplicate label {item!r}")
                labels[item] = address
            else:
                item.address = address
                item.length = estimate_length(item)
                address += item.length
        code_size = address - self._base

        # Second pass: check label references.
        instructions: dict[int, Instruction] = {}
        for item in self._items:
            if isinstance(item, str):
                continue
            for op in item.operands:
                if isinstance(op, Label) and op.name not in labels:
                    raise AssemblyError(f"undefined label {op.name!r} in {item}")
            item.label_targets = labels
            instructions[item.address] = item

        if not instructions:
            raise AssemblyError("program has no instructions")
        if self._entry_label is not None:
            if self._entry_label not in labels:
                raise AssemblyError(f"undefined entry label {self._entry_label!r}")
            entry = labels[self._entry_label]
        else:
            entry = self._base
        return Program(
            instructions=instructions,
            entry=entry,
            labels=labels,
            data=dict(self._data),
            code_size=code_size,
        )

    # --------------------------------------------------------- mnemonics

    def mov(self, dst: Operand, src: Operand) -> Instruction:
        return self.emit(Mnemonic.MOV, dst, src)

    def movzx(self, dst: Reg, src: Mem) -> Instruction:
        return self.emit(Mnemonic.MOVZX, dst, src)

    def movsx(self, dst: Reg, src: Mem) -> Instruction:
        return self.emit(Mnemonic.MOVSX, dst, src)

    def lea(self, dst: Reg, src: Mem) -> Instruction:
        return self.emit(Mnemonic.LEA, dst, src)

    def add(self, dst: Operand, src: Operand) -> Instruction:
        return self.emit(Mnemonic.ADD, dst, src)

    def sub(self, dst: Operand, src: Operand) -> Instruction:
        return self.emit(Mnemonic.SUB, dst, src)

    def and_(self, dst: Operand, src: Operand) -> Instruction:
        return self.emit(Mnemonic.AND, dst, src)

    def or_(self, dst: Operand, src: Operand) -> Instruction:
        return self.emit(Mnemonic.OR, dst, src)

    def xor(self, dst: Operand, src: Operand) -> Instruction:
        return self.emit(Mnemonic.XOR, dst, src)

    def cmp(self, left: Operand, right: Operand) -> Instruction:
        return self.emit(Mnemonic.CMP, left, right)

    def test(self, left: Operand, right: Operand) -> Instruction:
        return self.emit(Mnemonic.TEST, left, right)

    def inc(self, dst: Operand) -> Instruction:
        return self.emit(Mnemonic.INC, dst)

    def dec(self, dst: Operand) -> Instruction:
        return self.emit(Mnemonic.DEC, dst)

    def neg(self, dst: Operand) -> Instruction:
        return self.emit(Mnemonic.NEG, dst)

    def not_(self, dst: Operand) -> Instruction:
        return self.emit(Mnemonic.NOT, dst)

    def imul(self, dst: Reg, src: Operand) -> Instruction:
        return self.emit(Mnemonic.IMUL, dst, src)

    def idiv(self, src: Operand) -> Instruction:
        return self.emit(Mnemonic.IDIV, src)

    def cdq(self) -> Instruction:
        return self.emit(Mnemonic.CDQ)

    def shl(self, dst: Operand, count: Imm | Reg) -> Instruction:
        return self.emit(Mnemonic.SHL, dst, count)

    def shr(self, dst: Operand, count: Imm | Reg) -> Instruction:
        return self.emit(Mnemonic.SHR, dst, count)

    def sar(self, dst: Operand, count: Imm | Reg) -> Instruction:
        return self.emit(Mnemonic.SAR, dst, count)

    def push(self, src: Operand) -> Instruction:
        return self.emit(Mnemonic.PUSH, src)

    def pop(self, dst: Reg) -> Instruction:
        return self.emit(Mnemonic.POP, dst)

    def call(self, target: str | Reg | Mem) -> Instruction:
        return self.emit(Mnemonic.CALL, target)

    def ret(self) -> Instruction:
        return self.emit(Mnemonic.RET)

    def jmp(self, target: str | Reg | Mem) -> Instruction:
        return self.emit(Mnemonic.JMP, target)

    def jcc(self, cond: Cond, target: str) -> Instruction:
        return self.emit(Mnemonic.JCC, target, cond=cond)

    def nop(self) -> Instruction:
        return self.emit(Mnemonic.NOP)
