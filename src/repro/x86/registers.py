"""Architectural register and flag definitions for the x86 subset.

The subset models the eight 32-bit general-purpose registers of IA-32 and
the four arithmetic condition flags the paper's optimizations interact
with (ZF, SF, CF, OF).  Segment registers, FP stack, and MMX/SSE state are
out of scope: the paper's workloads and optimizations are integer code.
"""

from __future__ import annotations

import enum


class Reg(enum.IntEnum):
    """The eight 32-bit general-purpose x86 registers."""

    EAX = 0
    ECX = 1
    EDX = 2
    EBX = 3
    ESP = 4
    EBP = 5
    ESI = 6
    EDI = 7

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Registers in encoding order, useful for iteration in state snapshots.
ALL_REGS: tuple[Reg, ...] = tuple(Reg)

#: Number of architectural general-purpose registers.
NUM_REGS: int = len(ALL_REGS)


class Flag(enum.IntEnum):
    """Condition flags modeled by the subset (bit positions in EFLAGS)."""

    CF = 0
    ZF = 6
    SF = 7
    OF = 11

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: All modeled flags in a stable order.
ALL_FLAGS: tuple[Flag, ...] = (Flag.CF, Flag.ZF, Flag.SF, Flag.OF)

#: Bit mask that selects the modeled flag bits out of an EFLAGS word.
FLAGS_MASK: int = sum(1 << f for f in ALL_FLAGS)

MASK32 = 0xFFFFFFFF
MASK16 = 0xFFFF
MASK8 = 0xFF


def to_signed(value: int, bits: int = 32) -> int:
    """Interpret ``value`` (unsigned) as a two's-complement signed integer."""
    sign_bit = 1 << (bits - 1)
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value & sign_bit else value


def to_unsigned(value: int, bits: int = 32) -> int:
    """Truncate ``value`` to an unsigned integer of the given width."""
    return value & ((1 << bits) - 1)


def pack_flags(cf: bool, zf: bool, sf: bool, of: bool) -> int:
    """Pack individual flag booleans into an EFLAGS-style word."""
    word = 0
    if cf:
        word |= 1 << Flag.CF
    if zf:
        word |= 1 << Flag.ZF
    if sf:
        word |= 1 << Flag.SF
    if of:
        word |= 1 << Flag.OF
    return word


def unpack_flags(word: int) -> dict[Flag, bool]:
    """Unpack an EFLAGS-style word into a flag->bool mapping."""
    return {flag: bool(word & (1 << flag)) for flag in ALL_FLAGS}
