"""Sparse, byte-addressable flat memory for the functional emulator.

Memory is stored in fixed-size pages allocated on demand, which keeps small
workloads cheap while still supporting widely separated code, stack, and
heap regions (the synthetic workloads use realistic 32-bit layouts).
"""

from __future__ import annotations

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Sparse 32-bit byte-addressable memory with little-endian accessors."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        page_number = address >> PAGE_BITS
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes at ``address`` as an unsigned little-endian value."""
        address &= 0xFFFFFFFF
        page = self._page(address)
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            data = page[offset : offset + size]
        else:  # access straddles a page boundary
            first = page[offset:]
            rest = self._page((address + len(first)) & 0xFFFFFFFF)
            data = bytes(first) + bytes(rest[: size - len(first)])
        return int.from_bytes(data, "little")

    def write(self, address: int, value: int, size: int) -> None:
        """Write ``size`` low-order bytes of ``value`` at ``address``."""
        address &= 0xFFFFFFFF
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        page = self._page(address)
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page[offset : offset + size] = data
        else:
            split = PAGE_SIZE - offset
            page[offset:] = data[:split]
            rest = self._page((address + split) & 0xFFFFFFFF)
            rest[: size - split] = data[split:]

    def write_bytes(self, address: int, data: bytes) -> None:
        """Bulk write, used to initialize workload data sections."""
        for i, byte in enumerate(data):
            self.write(address + i, byte, 1)

    def read_bytes(self, address: int, size: int) -> bytes:
        """Bulk read, used by tests and workload checks."""
        return bytes(self.read(address + i, 1) for i in range(size))

    def touched_pages(self) -> int:
        """Number of pages allocated so far (observability for tests)."""
        return len(self._pages)
