"""Scenario specs: JSON-serializable, content-addressable family recipes.

A :class:`FamilySpec` names a workload *family* (a parameterized program
generator built on the fuzz genome machinery), a family seed, and a
member count.  Expansion is pure: ``(family, seed, count)`` always
yields the same member names, the same genomes, and therefore the same
artifact-store keys — which is what lets the matrix runner, the batch
service, and the cache treat family members exactly like the 14
hand-written workloads.

Member names are fully self-describing (``loopy-s1-007``): pool workers
and the service resolve workloads by name only, so everything needed to
regenerate a member must be recoverable from its name in any process.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.artifacts.store import content_key

#: Spec schema version, mixed into content ids.
SPEC_VERSION = 1

#: ``family-s<seed>-<index>`` — the self-describing member name shape.
_MEMBER_RE = re.compile(r"^([a-z][a-z0-9_]*)-s(\d+)-(\d{3,})$")


class SpecError(ValueError):
    """Raised for malformed or unknown scenario specs."""


@dataclass(frozen=True)
class FamilySpec:
    """One family expansion request: ``count`` members of ``family``."""

    family: str
    seed: int = 1
    count: int = 24
    #: Reserved for future per-spec knob overrides; kept in the content
    #: id so any use of it changes every derived key.
    params: dict = field(default_factory=dict)

    def member_names(self) -> list[str]:
        return [member_name(self.family, self.seed, i) for i in range(self.count)]

    def content_id(self) -> str:
        """SHA-256 id over the spec's canonical JSON (content-addressed)."""
        return content_key("scenario-spec", spec_to_json(self))


def spec_to_json(spec: FamilySpec) -> dict:
    return {
        "version": SPEC_VERSION,
        "family": spec.family,
        "seed": spec.seed,
        "count": spec.count,
        "params": dict(spec.params),
    }


def spec_from_json(payload: dict) -> FamilySpec:
    version = payload.get("version", SPEC_VERSION)
    if version != SPEC_VERSION:
        raise SpecError(f"unsupported scenario spec version {version!r}")
    try:
        family = str(payload["family"])
        seed = int(payload.get("seed", 1))
        count = int(payload.get("count", 24))
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecError(f"malformed scenario spec: {exc}") from exc
    if seed < 0 or count < 1:
        raise SpecError(f"scenario spec needs seed >= 0 and count >= 1")
    return FamilySpec(
        family=family, seed=seed, count=count,
        params=dict(payload.get("params", {})),
    )


def member_name(family: str, seed: int, index: int) -> str:
    """Canonical member name: ``family-s<seed>-<index:03d>``."""
    if not re.match(r"^[a-z][a-z0-9_]*$", family):
        raise SpecError(f"bad family name {family!r}")
    if seed < 0 or index < 0:
        raise SpecError(f"member seed/index must be non-negative")
    return f"{family}-s{seed}-{index:03d}"


def parse_member_name(name: str) -> tuple[str, int, int] | None:
    """Inverse of :func:`member_name`; None when the shape doesn't match."""
    match = _MEMBER_RE.match(name)
    if match is None:
        return None
    return match.group(1), int(match.group(2)), int(match.group(3))


def member_genome_seed(family_seed: int, index: int, run_seed: int = 1) -> int:
    """Deterministic genome seed for one family member.

    Mixes the family seed, the member index, and the harness run seed
    (``--seed``) so distinct members — and distinct run seeds over one
    member — draw independent genomes, while staying reproducible from
    the name alone.
    """
    return (
        family_seed * 1_000_003 + index * 8191 + (run_seed - 1) * 131
    ) & 0x7FFF_FFFF
