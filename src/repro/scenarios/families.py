"""Workload families: hundreds of matrix cells from five generators.

Each family derives a per-member :class:`GeneratorConfig` from the fuzz
generator's scenario knobs, draws a genome with
:func:`repro.fuzz.generator.generate_program`, and renders it into an
ordinary :class:`~repro.workloads.base.Workload`.  Everything is keyed
off the member *name* (``loopy-s1-007``), so any process — pool worker,
service worker, a fresh interpreter — regenerates the identical program
without shipping objects across the boundary.

The five families stress the optimizer along the axes the paper's 14
synthetics only sample:

* ``loopy``   — nested counted loops (frame constructor span stress);
* ``branchy`` — swept branch bias and density (assertion conversion);
* ``aliasy``  — pinned ESI/EDI alias distance pools (unsafe stores);
* ``redund``  — same-site load pairs and store-then-reload chains
  (CSE / store-forwarding fodder);
* ``stacky``  — leaf-helper call traffic (return-stack, push/pop).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.fuzz.generator import (
    FuzzProgram,
    GeneratorConfig,
    generate_program,
    render_program,
)
from repro.workloads.base import Workload
from repro.x86.assembler import Program

from repro.scenarios.spec import (
    FamilySpec,
    SpecError,
    member_genome_seed,
    member_name,
    parse_member_name,
)

#: Family seed used for the default (glob-visible) member enumeration.
DEFAULT_FAMILY_SEED = 1

#: Default members per family — 5 x 24 = 120 enumerable cells.
DEFAULT_FAMILY_COUNT = 24


@dataclass(frozen=True)
class Family:
    """One family: a name plus a per-member config derivation rule."""

    name: str
    description: str
    derive: Callable[[random.Random], GeneratorConfig]


def _loopy(rng: random.Random) -> GeneratorConfig:
    return GeneratorConfig(
        min_body_ops=8,
        max_body_ops=18,
        loop_nesting=rng.choice((2, 2, 3)),
        max_inner_iterations=rng.choice((3, 4, 5, 6)),
    )


def _branchy(rng: random.Random) -> GeneratorConfig:
    return GeneratorConfig(
        min_body_ops=8,
        max_body_ops=20,
        branch_bias=rng.choice((0.1, 0.3, 0.5, 0.7, 0.9, 0.95)),
        branch_density=rng.choice((0.15, 0.25, 0.35)),
    )


def _aliasy(rng: random.Random) -> GeneratorConfig:
    return GeneratorConfig(
        min_body_ops=8,
        max_body_ops=18,
        alias_deltas=rng.choice(
            ((0,), (1,), (2,), (3,), (0, 4), (1, 2, 3), (4, 8), (64,))
        ),
        redundancy=rng.choice((0.0, 0.15)),
    )


def _redund(rng: random.Random) -> GeneratorConfig:
    return GeneratorConfig(
        min_body_ops=10,
        max_body_ops=22,
        redundancy=rng.choice((0.2, 0.4, 0.6, 0.8)),
        alias_deltas=rng.choice(((0,), (0, 4), (4, 8))),
    )


def _stacky(rng: random.Random) -> GeneratorConfig:
    return GeneratorConfig(
        min_body_ops=8,
        max_body_ops=18,
        call_weight=rng.choice((0.15, 0.25, 0.35)),
        loop_nesting=rng.choice((1, 2)),
    )


FAMILIES: dict[str, Family] = {
    family.name: family
    for family in (
        Family("loopy", "nested counted loops", _loopy),
        Family("branchy", "swept branch bias/density", _branchy),
        Family("aliasy", "pinned load/store alias distance", _aliasy),
        Family("redund", "CSE and store-forwarding fodder", _redund),
        Family("stacky", "leaf-helper call traffic", _stacky),
    )
}


def member_config(family: str, family_seed: int, index: int) -> GeneratorConfig:
    """The member's generator config, derived deterministically by name."""
    try:
        derive = FAMILIES[family].derive
    except KeyError:
        raise SpecError(
            f"unknown family {family!r}; known: {sorted(FAMILIES)}"
        ) from None
    rng = random.Random(member_genome_seed(family_seed, index) ^ 0x5CE7A210)
    return derive(rng)


def member_genome(
    family: str, family_seed: int, index: int, run_seed: int = 1
) -> FuzzProgram:
    """The member's genome for one harness run seed (pure function)."""
    config = member_config(family, family_seed, index)
    return generate_program(
        member_genome_seed(family_seed, index, run_seed), config
    )


def _scaled(genome: FuzzProgram, scale: int) -> FuzzProgram:
    if scale <= 1:
        return genome
    scaled = genome.copy()
    scaled.iterations *= scale
    return scaled


def member_workload(family: str, family_seed: int, index: int) -> Workload:
    """Materialize one family member as a registerable workload."""
    name = member_name(family, family_seed, index)
    config = member_config(family, family_seed, index)

    def build(scale: int, seed: int) -> Program:
        genome = member_genome(family, family_seed, index, run_seed=seed)
        return render_program(_scaled(genome, scale))

    def genome(seed: int = 1) -> FuzzProgram:
        return member_genome(family, family_seed, index, run_seed=seed)

    knobs = ", ".join(
        f"{k}={v}"
        for k, v in (
            ("nesting", config.loop_nesting if config.loop_nesting > 1 else None),
            ("bias", config.branch_bias),
            ("density", config.branch_density or None),
            ("alias", config.alias_deltas),
            ("redund", config.redundancy or None),
            ("calls", config.call_weight or None),
        )
        if v is not None
    )
    return Workload(
        name=name,
        category="Family",
        description=f"{FAMILIES[family].description} ({knobs})",
        build=build,
        genome=genome,
    )


def expand_spec(spec: FamilySpec) -> list[Workload]:
    """Expand a spec into its member workloads (deterministic order)."""
    if spec.family not in FAMILIES:
        raise SpecError(
            f"unknown family {spec.family!r}; known: {sorted(FAMILIES)}"
        )
    if spec.params:
        raise SpecError("scenario spec params are not supported yet")
    return [
        member_workload(spec.family, spec.seed, index)
        for index in range(spec.count)
    ]


class FamilyProvider:
    """Name-driven lazy workload provider for all family members.

    ``lookup`` accepts *any* well-formed member name (cross-process
    resolution never depends on prior expansion); ``names`` enumerates
    the default seed-1 window per family plus any members expanded via
    ``scenarios gen`` in this process, so globs have a stable universe.
    """

    def __init__(self) -> None:
        self._extra: set[str] = set()

    def note_expanded(self, names: Iterable[str]) -> None:
        self._extra.update(names)

    def lookup(self, name: str) -> Workload | None:
        parsed = parse_member_name(name)
        if parsed is None:
            return None
        family, family_seed, index = parsed
        if family not in FAMILIES:
            return None
        return member_workload(family, family_seed, index)

    def names(self) -> list[str]:
        defaults = [
            member_name(family, DEFAULT_FAMILY_SEED, index)
            for family in sorted(FAMILIES)
            for index in range(DEFAULT_FAMILY_COUNT)
        ]
        return sorted(set(defaults) | self._extra)


#: The process-wide provider instance (installed by repro.scenarios).
PROVIDER = FamilyProvider()
