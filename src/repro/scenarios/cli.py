"""The ``scenarios`` subcommand family.

::

    python -m repro.harness scenarios gen --families loopy,branchy --count 24
    python -m repro.harness scenarios ls --glob 'loopy-*'
    python -m repro.harness scenarios run --workloads 'redund-*' --configs RP,RPO --jobs 4
    python -m repro.harness scenarios export gzip trace.rutb
    python -m repro.harness scenarios import trace.rutb
    python -m repro.harness scenarios characterize loopy-s1-003
    python -m repro.harness scenarios characterize ext-mytrace --json

``gen`` expands family specs and prints a deterministic manifest (names
plus a spec content id); ``run`` pushes any name/glob selection through
the parallel matrix runner with artifact-store caching; ``import`` and
``export`` move traces across the interchange boundary; ``characterize``
prints the reuse/loop/bias/latency report for any workload.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.artifacts.store import ArtifactStore
from repro.metrics import build_run_ledger, get_registry, profiled, write_ledger

from repro.scenarios.families import (
    DEFAULT_FAMILY_COUNT,
    FAMILIES,
    PROVIDER as FAMILY_PROVIDER,
    expand_spec,
)
from repro.scenarios.importer import TraceImportError, import_trace
from repro.scenarios.spec import FamilySpec, SpecError


def _add_common_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache root (default: $REPRO_UOPT_CACHE_DIR "
        "or ~/.cache/repro-uopt)",
    )
    parser.add_argument(
        "--emit-stats",
        metavar="FILE",
        default=None,
        help="write a versioned JSON run ledger to FILE after the run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="wrap the run in cProfile and print hotspots to stderr",
    )


def scenarios_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness scenarios",
        description="Workload families, trace ingestion, characterization.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    gen_p = sub.add_parser("gen", help="expand family specs into workloads")
    gen_p.add_argument(
        "--families",
        default=",".join(sorted(FAMILIES)),
        metavar="A,B,...",
        help=f"families to expand (default: all of {sorted(FAMILIES)})",
    )
    gen_p.add_argument("--seed", type=int, default=1, help="family seed")
    gen_p.add_argument(
        "--count", type=int, default=DEFAULT_FAMILY_COUNT,
        help="members per family",
    )
    gen_p.add_argument(
        "--json", action="store_true",
        help="print the manifest as one JSON object",
    )

    ls_p = sub.add_parser("ls", help="list resolvable scenario workloads")
    ls_p.add_argument(
        "--glob", default=None, metavar="PATTERN",
        help="only names matching this glob",
    )

    run_p = sub.add_parser("run", help="run cells through the matrix runner")
    run_p.add_argument(
        "--workloads", required=True, metavar="A,B,loopy-*",
        help="workload names/globs (comma separated)",
    )
    run_p.add_argument(
        "--configs", default="RPO", metavar="IC,RP,...",
        help="config names from the CONFIGS registry (default: RPO)",
    )
    run_p.add_argument("--scale", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--jobs", type=int, default=1)
    run_p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the artifact store entirely",
    )

    import_p = sub.add_parser("import", help="import an external trace")
    import_p.add_argument("path", help="trace file (RUTB binary or JSON form)")
    import_p.add_argument(
        "--name", default=None,
        help="workload name override (always prefixed ext-)",
    )

    export_p = sub.add_parser("export", help="export a workload trace")
    export_p.add_argument("workload", help="workload name to capture")
    export_p.add_argument("path", help="output file (.rutb binary or .json)")
    export_p.add_argument(
        "--format", choices=("bin", "json"), default=None,
        help="output form (default: by file extension, .json = JSON)",
    )
    export_p.add_argument("--scale", type=int, default=None)
    export_p.add_argument("--seed", type=int, default=1)

    char_p = sub.add_parser(
        "characterize", help="reuse/loop/bias/latency report"
    )
    char_p.add_argument("workload", help="workload name (family/imported ok)")
    char_p.add_argument(
        "--config", default="RPO",
        help="replay-frontend config name (RP or RPO; default RPO)",
    )
    char_p.add_argument("--scale", type=int, default=None)
    char_p.add_argument("--seed", type=int, default=1)
    char_p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    for p in (gen_p, ls_p, run_p, import_p, export_p, char_p):
        _add_common_flags(p)
    args = parser.parse_args(argv)

    store = ArtifactStore(args.cache_dir)
    actions = {
        "gen": _gen,
        "ls": _ls,
        "run": _run,
        "import": _import,
        "export": _export,
        "characterize": _characterize,
    }
    with profiled(enabled=args.profile):
        status = actions[args.action](args, store)
    if args.emit_stats:
        _emit_ledger(argv, args, store)
    return status


def _gen(args, store: ArtifactStore) -> int:
    families = [f for f in args.families.split(",") if f]
    manifest: list[dict] = []
    total = 0
    try:
        for family in families:
            spec = FamilySpec(family=family, seed=args.seed, count=args.count)
            members = expand_spec(spec)
            FAMILY_PROVIDER.note_expanded(w.name for w in members)
            total += len(members)
            manifest.append(
                {
                    "family": family,
                    "seed": spec.seed,
                    "count": spec.count,
                    "spec_id": spec.content_id(),
                    "members": [w.name for w in members],
                }
            )
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"specs": manifest, "total": total}, sort_keys=True))
        return 0
    for entry in manifest:
        print(
            f"{entry['family']:<8} seed={entry['seed']} "
            f"count={entry['count']}  spec {entry['spec_id'][:16]}"
        )
        for name in entry["members"]:
            print(f"  {name}")
    print(f"{total} workloads across {len(manifest)} families")
    return 0


def _ls(args, store: ArtifactStore) -> int:
    from repro.workloads.base import get_workload, resolve_workloads, workload_names

    names = workload_names()
    if args.glob:
        try:
            names = resolve_workloads([args.glob])
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    for name in names:
        workload = get_workload(name)
        print(f"{name:<20} {workload.category:<10} {workload.description}")
    print(f"{len(names)} workloads")
    return 0


def _run(args, store: ArtifactStore) -> int:
    from repro.artifacts.runner import MatrixTask, run_matrix
    from repro.harness.experiment import CONFIGS
    from repro.workloads.base import resolve_workloads

    try:
        workloads = resolve_workloads(
            [w for w in args.workloads.split(",") if w]
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    configs = []
    for name in (c for c in args.configs.split(",") if c):
        if name not in CONFIGS:
            print(
                f"error: unknown config {name!r}; known: {sorted(CONFIGS)}",
                file=sys.stderr,
            )
            return 2
        configs.append(CONFIGS[name])
    tasks = [
        MatrixTask(workload=w, config=c, scale=args.scale, seed=args.seed)
        for w in workloads
        for c in configs
    ]
    run = run_matrix(
        tasks,
        jobs=args.jobs,
        store=None if args.no_cache else store,
        metrics=get_registry(),
    )
    # stdout carries only the results (cold and warm runs must compare
    # byte-identical); cache provenance goes to stderr.
    for task, result, cell in zip(run.tasks, run.results, run.telemetry):
        print(
            f"{task.workload:<20} {task.config.name:<5} "
            f"IPC {result.ipc_x86:.3f}  {result.sim.cycles:>10,} cycles"
        )
        origin = "cached" if cell.result_cache_hit else f"{cell.seconds:.2f}s"
        print(
            f"  {task.workload} {task.config.name} [{origin}]",
            file=sys.stderr,
        )
    hits = sum(1 for cell in run.telemetry if cell.result_cache_hit)
    print(
        f"[repro.scenarios] {len(tasks)} cells ({hits} cached) "
        f"in {run.seconds:.2f}s at jobs={run.jobs}",
        file=sys.stderr,
    )
    return 0


def _import(args, store: ArtifactStore) -> int:
    try:
        report = import_trace(args.path, name=args.name, root=args.cache_dir)
    except (OSError, TraceImportError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"imported {report.name}: {report.records:,} records over "
        f"{report.instructions} static instructions"
    )
    print(f"  canonical file {report.path}")
    print(f"  content digest {report.digest[:16]}")
    return 0


def _export(args, store: ArtifactStore) -> int:
    from repro.artifacts import codec
    from repro.scenarios.importer import trace_to_json
    from repro.workloads.base import build_workload

    try:
        trace = build_workload(args.workload, scale=args.scale, seed=args.seed)
    except (KeyError, RuntimeError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    form = args.format or ("json" if args.path.endswith(".json") else "bin")
    if form == "json":
        with open(args.path, "w") as stream:
            json.dump(trace_to_json(trace), stream, sort_keys=True)
    else:
        codec.dump_trace_binary(trace, args.path)
    print(f"exported {args.workload}: {len(trace):,} records to {args.path}")
    return 0


def _characterize(args, store: ArtifactStore) -> int:
    from repro.artifacts.runner import compute_trace
    from repro.harness.experiment import CONFIGS
    from repro.scenarios.characterize import (
        characterize,
        format_characterization,
    )

    config = CONFIGS.get(args.config)
    if config is None or config.frontend != "replay":
        print(
            f"error: --config must be a replay config (RP or RPO); "
            f"got {args.config!r}",
            file=sys.stderr,
        )
        return 2
    try:
        trace = compute_trace(
            args.workload, args.scale, args.seed, store=store
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    report = characterize(trace, config, workload_name=args.workload)
    if args.json:
        print(json.dumps(report.to_json(), sort_keys=True))
    else:
        print(format_characterization(report))
    return 0


def _emit_ledger(argv: list[str], args, store: ArtifactStore) -> None:
    from repro.harness.cli import _NoMatrix

    ledger = build_run_ledger(
        argv,
        [f"scenarios-{args.action}"],
        _NoMatrix(store),
        registry=get_registry(),
    )
    write_ledger(args.emit_stats, ledger)
    print(f"[repro.metrics] run ledger written to {args.emit_stats}", file=sys.stderr)
