"""Trace characterization: why does (or doesn't) a workload optimize?

Three reports over any dynamic trace, synthetic or imported:

* **Reuse by instruction type and loop structure** — following
  "Decanting the Contribution of Instruction Types and Loop Structures
  in the Reuse of Traces", the report splits the rePLay engine's
  dynamic uop removal by the x86 mnemonic that produced each uop, and
  breaks dynamic execution down by runtime loop-nesting depth
  (back-edge detection over the trace).
* **Frame coverage and branch bias** — the share of retirement covered
  by frames, plus a ten-bucket histogram of per-static-branch taken
  ratios (the knob assertion conversion feeds on).
* **Uop latency/throughput table** — a uops.info-style table of every
  uop opcode's functional-unit class, issue latency, and peak
  throughput, read from the *live* :class:`ScheduleBuilder` against the
  active processor config and cross-checked against the paper's Table 2
  reference values; a departure is flagged, not hidden.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.harness.experiment import CONFIGS, ExperimentConfig
from repro.replay.sequencer import RePLaySequencer
from repro.timing.config import ProcessorConfig
from repro.timing.pipeline import PipelineModel
from repro.timing.schedule import KIND_ALU, KIND_LOAD, KIND_STORE, ScheduleBuilder
from repro.trace.injector import MicroOpInjector
from repro.trace.stream import DynamicTrace
from repro.uops.uop import UopOp

#: Paper Table 2 reference latencies per schedule class; the live config
#: is compared against these so overrides surface in the report.
PAPER_LATENCY = {"simple": 1, "mul": 4, "div": 20, "load": 2, "store": 1}

#: Branch-bias histogram bucket count (taken ratio 0..1).
BIAS_BUCKETS = 10


@dataclass
class ReuseRow:
    """Dynamic uop reuse attributed to one x86 mnemonic."""

    mnemonic: str
    raw_uops: int  # dynamic uops entering frames (weighted by commits)
    kept_uops: int  # dynamic uops surviving optimization

    @property
    def removed(self) -> int:
        return self.raw_uops - self.kept_uops

    @property
    def removed_pct(self) -> float:
        return 100.0 * self.removed / self.raw_uops if self.raw_uops else 0.0


@dataclass
class LoopRow:
    """One runtime loop (identified by its back-edge target)."""

    head_pc: int
    iterations: int
    max_depth: int


@dataclass
class UopRow:
    """One opcode's scheduling facts under the active config."""

    op: str
    fu: str
    latency: str  # rendered (loads/stores resolve dynamically)
    throughput: int  # issue ports of its FU class
    reference: str
    matches_reference: bool


@dataclass
class Characterization:
    """Everything `scenarios characterize` measured."""

    workload: str
    config_name: str
    records: int
    loads: int
    stores: int
    conditional_branches: int
    taken_ratio: float
    frame_coverage: float
    frames: int
    dynamic_uop_reduction: float
    reuse_by_type: list[ReuseRow] = field(default_factory=list)
    loops: list[LoopRow] = field(default_factory=list)
    depth_histogram: dict[int, int] = field(default_factory=dict)
    bias_histogram: list[int] = field(default_factory=list)
    uop_table: list[UopRow] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "config": self.config_name,
            "records": self.records,
            "loads": self.loads,
            "stores": self.stores,
            "conditional_branches": self.conditional_branches,
            "taken_ratio": round(self.taken_ratio, 4),
            "frame_coverage": round(self.frame_coverage, 4),
            "frames": self.frames,
            "dynamic_uop_reduction": round(self.dynamic_uop_reduction, 4),
            "reuse_by_type": [
                {
                    "mnemonic": row.mnemonic,
                    "raw_uops": row.raw_uops,
                    "kept_uops": row.kept_uops,
                    "removed": row.removed,
                    "removed_pct": round(row.removed_pct, 2),
                }
                for row in self.reuse_by_type
            ],
            "loops": [
                {
                    "head_pc": row.head_pc,
                    "iterations": row.iterations,
                    "max_depth": row.max_depth,
                }
                for row in self.loops
            ],
            "depth_histogram": {
                str(depth): count
                for depth, count in sorted(self.depth_histogram.items())
            },
            "bias_histogram": list(self.bias_histogram),
            "uop_table": [
                {
                    "op": row.op,
                    "fu": row.fu,
                    "latency": row.latency,
                    "throughput": row.throughput,
                    "reference": row.reference,
                    "ok": row.matches_reference,
                }
                for row in self.uop_table
            ],
        }


# ------------------------------------------------------------ loop walker


def _loop_structure(
    trace: DynamicTrace,
) -> tuple[list[LoopRow], dict[int, int]]:
    """Back-edge loop detection: per-loop iteration counts and a
    per-depth dynamic instruction histogram.

    A taken conditional branch to a lower pc is a back-edge; its target
    is the loop head and the branch pc bounds the body.  The active-loop
    stack pops when control leaves a body range (calls into helpers
    outside the range leave the loop, matching runtime nesting rather
    than static structure).
    """
    stack: list[tuple[int, int]] = []  # (head pc, back-edge pc)
    loops: dict[int, LoopRow] = {}
    depth_histogram: Counter[int] = Counter()
    for record in trace:
        pc = record.pc
        while stack and not (stack[-1][0] <= pc <= stack[-1][1]):
            stack.pop()
        depth_histogram[len(stack)] += 1
        if (
            record.is_conditional_branch
            and record.branch_taken
            and record.next_pc < pc
        ):
            head = record.next_pc
            row = loops.get(head)
            if row is None:
                row = loops[head] = LoopRow(head_pc=head, iterations=0, max_depth=0)
            if not (stack and stack[-1][0] == head):
                stack.append((head, pc))
            row.iterations += 1
            row.max_depth = max(row.max_depth, len(stack))
    return sorted(loops.values(), key=lambda r: r.head_pc), dict(depth_histogram)


def _bias_histogram(trace: DynamicTrace) -> list[int]:
    """Static conditional branches bucketed by dynamic taken ratio."""
    taken: Counter[int] = Counter()
    total: Counter[int] = Counter()
    for record in trace:
        if record.is_conditional_branch:
            total[record.pc] += 1
            if record.branch_taken:
                taken[record.pc] += 1
    buckets = [0] * BIAS_BUCKETS
    for pc, count in total.items():
        ratio = taken[pc] / count
        buckets[min(int(ratio * BIAS_BUCKETS), BIAS_BUCKETS - 1)] += 1
    return buckets


# -------------------------------------------------------------- reuse


def _reuse_by_type(sequencer: RePLaySequencer, trace: DynamicTrace) -> list[ReuseRow]:
    """Per-mnemonic dynamic uop removal over committed frame instances."""
    mnemonic_at: dict[int, str] = {}
    for record in trace:
        mnemonic_at.setdefault(record.pc, record.instruction.mnemonic.value)
    raw: Counter[str] = Counter()
    kept: Counter[str] = Counter()
    for frame in sequencer.frame_cache.frames():
        weight = frame.commits
        if not weight:
            continue
        for uop in frame.dyn_uops:
            raw[mnemonic_at.get(uop.x86_pc, "?")] += weight
        if frame.buffer is not None:
            kept_uops = frame.kept_uops()
        else:
            kept_uops = frame.dyn_uops
        for uop in kept_uops:
            kept[mnemonic_at.get(uop.x86_pc, "?")] += weight
    return [
        ReuseRow(mnemonic=name, raw_uops=raw[name], kept_uops=kept.get(name, 0))
        for name in sorted(raw, key=lambda n: (-raw[n], n))
    ]


# ------------------------------------------------------------- uop table


def uop_latency_table(processor: ProcessorConfig) -> list[UopRow]:
    """uops.info-style opcode table, cross-checked against Table 2."""
    builder = ScheduleBuilder(processor)
    ports = {
        "simple": processor.simple_alus,
        "complex": processor.complex_alus,
        "load": processor.load_store_units,
        "store": processor.load_store_units,
    }
    rows: list[UopRow] = []
    for op in UopOp:
        fu, kind, latency = builder._fu_and_latency(op)
        if kind == KIND_LOAD:
            live = processor.dcache.hit_latency
            rendered = f"{live} (D$ hit)"
            reference_key = "load"
        elif kind == KIND_STORE:
            live = 1
            rendered = "1 (commit)"
            reference_key = "store"
        else:
            live = latency
            rendered = str(latency)
            reference_key = (
                "mul"
                if op is UopOp.MUL
                else "div"
                if op in (UopOp.DIVQ, UopOp.DIVR)
                else "simple"
            )
        reference = PAPER_LATENCY[reference_key]
        rows.append(
            UopRow(
                op=op.value,
                fu=fu,
                latency=rendered,
                throughput=ports[fu],
                reference=f"{reference} ({reference_key})",
                matches_reference=live == reference,
            )
        )
    return rows


# ----------------------------------------------------------- entry point


def characterize(
    trace: DynamicTrace,
    config: ExperimentConfig | None = None,
    workload_name: str | None = None,
) -> Characterization:
    """Run the characterization pipeline over one trace.

    Unlike :func:`repro.harness.experiment.run_experiment`, this keeps
    the sequencer so the frame cache's per-frame dynamic counts can be
    decanted after simulation.
    """
    config = config or CONFIGS["RPO"]
    if config.frontend != "replay":
        raise ValueError(
            "characterize needs a replay-frontend config (RP or RPO); "
            f"got {config.name!r}"
        )
    injector = MicroOpInjector()
    injected = injector.inject_trace(trace)
    optimizer = None
    if config.optimize:
        from repro.optimizer.pipeline import FrameOptimizer

        optimizer = FrameOptimizer(config.optimizer)
    sequencer = RePLaySequencer(
        injected,
        config.processor,
        optimizer,
        constructor_config=config.constructor,
    )
    sim = PipelineModel(config.processor).simulate(sequencer)

    stats = trace.stats()
    loops, depth_histogram = _loop_structure(trace)
    return Characterization(
        workload=workload_name or trace.name,
        config_name=config.name,
        records=stats.x86_instructions,
        loads=stats.loads,
        stores=stats.stores,
        conditional_branches=stats.conditional_branches,
        taken_ratio=stats.taken_ratio,
        frame_coverage=sim.coverage,
        frames=len(sequencer.frame_cache),
        dynamic_uop_reduction=sequencer.stats.dynamic_uop_reduction,
        reuse_by_type=_reuse_by_type(sequencer, trace),
        loops=loops,
        depth_histogram=depth_histogram,
        bias_histogram=_bias_histogram(trace),
        uop_table=uop_latency_table(config.processor),
    )


def format_characterization(report: Characterization) -> str:
    """Render the report as aligned text tables."""
    lines = [
        f"characterize {report.workload} under {report.config_name}",
        f"  {report.records:,} x86 records, {report.loads:,} loads, "
        f"{report.stores:,} stores",
        f"  {report.conditional_branches:,} conditional branches "
        f"({100 * report.taken_ratio:.1f}% taken)",
        f"  frame coverage {100 * report.frame_coverage:.1f}% over "
        f"{report.frames} frames; dynamic uop reduction "
        f"{100 * report.dynamic_uop_reduction:.1f}%",
        "",
        "reuse by instruction type (committed frame instances)",
        f"  {'mnemonic':<8} {'raw uops':>10} {'kept':>10} {'removed':>10} {'%':>6}",
    ]
    for row in report.reuse_by_type:
        lines.append(
            f"  {row.mnemonic:<8} {row.raw_uops:>10,} {row.kept_uops:>10,} "
            f"{row.removed:>10,} {row.removed_pct:>5.1f}%"
        )
    if not report.reuse_by_type:
        lines.append("  (no committed frame instances)")
    lines += ["", "loop structure (runtime back-edges)"]
    for row in report.loops:
        lines.append(
            f"  head {row.head_pc:#8x}: {row.iterations:>8,} back-edges, "
            f"max depth {row.max_depth}"
        )
    if not report.loops:
        lines.append("  (no loops detected)")
    lines.append("  dynamic instructions by loop depth: " + ", ".join(
        f"d{depth}={count:,}"
        for depth, count in sorted(report.depth_histogram.items())
    ))
    lines += [
        "",
        "branch bias histogram (static branches per taken-ratio decile)",
        "  " + " ".join(
            f"{10 * i}-{10 * (i + 1)}%:{count}"
            for i, count in enumerate(report.bias_histogram)
        ),
        "",
        "uop latency/throughput vs Table 2 reference",
        f"  {'uop':<10} {'fu':<8} {'latency':<12} {'ports':>5}  reference",
    ]
    for row in report.uop_table:
        flag = "" if row.matches_reference else "  ** DIFFERS from reference"
        lines.append(
            f"  {row.op:<10} {row.fu:<8} {row.latency:<12} "
            f"{row.throughput:>5}  {row.reference}{flag}"
        )
    return "\n".join(lines)
