"""Scenario subsystem: workload families, trace ingestion, characterization.

Three front doors onto the experiment matrix (DESIGN.md §13):

* :mod:`repro.scenarios.families` — parameterized workload families
  grown from the fuzz generator's genome knobs, expanding ``(family,
  seed, count)`` specs into hundreds of registered matrix cells;
* :mod:`repro.scenarios.importer` — external dynamic traces in the
  binary codec (or the JSON text form) validated, quarantined when
  malformed, and registered as runnable workloads;
* :mod:`repro.scenarios.characterize` — reuse-by-instruction-type,
  loop-structure, branch-bias, and uop latency/throughput reports over
  any trace.
"""

from __future__ import annotations

_INSTALLED = False


def install_providers() -> None:
    """Register the family and imported-trace workload providers.

    Called by :func:`repro.workloads.base._ensure_loaded`, so any
    process that resolves workloads — CLI, pool worker, service — can
    resolve scenario names without further setup.
    """
    global _INSTALLED
    if _INSTALLED:
        return
    _INSTALLED = True
    from repro.workloads.base import register_provider

    from repro.scenarios import families, importer

    register_provider(families.PROVIDER)
    register_provider(importer.PROVIDER)
