"""External trace ingestion: validate, canonicalize, register, run.

The interchange format is the PR-1 binary trace codec
(:mod:`repro.artifacts.codec`, magic ``RUTB``), plus a documented JSON
text form for third parties who don't want to emit gzip'd structs
(see DESIGN.md §13 for the field-level spec).  Import is strict:

* the codec version must match (``TraceVersionError`` names the file
  and both versions — never a bare ``struct.error``);
* every conditional branch must carry its direction;
* record linkage must be continuous (``next_pc`` chains, and non-control
  instructions fall through by their encoded length);
* memory transactions must be sane (size 1/2/4, 32-bit addresses,
  data within the access width);
* the register-effect stream must be complete enough to decode — each
  record is run through the Micro-Op Injector, exactly the consumer
  that would choke on an incomplete trace at simulation time.

Malformed inputs are quarantined (copied into the import quarantine
directory) and rejected with a structured error listing every problem
found.  Valid traces are re-encoded canonically into the import
directory and become runnable workloads named ``ext-<name>``: the
registry provider resolves them in any process, and the artifact store
keys them by the canonical file's content digest.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.artifacts import codec
from repro.artifacts.store import default_cache_dir
from repro.trace.injector import InjectionError, MicroOpInjector
from repro.trace.record import MemOp, TraceRecord
from repro.trace.stream import DynamicTrace
from repro.trace.tracefile import (
    TraceFileError,
    _decode_operand,
    _encode_operand,
)
from repro.x86.instructions import Cond, Instruction, Mnemonic
from repro.x86.registers import Reg

#: JSON text interchange form identifiers.
JSON_FORMAT = "repro-uopt/trace-json"
JSON_VERSION = 1

#: Imported workload names are ``ext-<sanitized stem>``.
NAME_PREFIX = "ext-"

#: Validation caps how many problems it reports per trace.
MAX_PROBLEMS = 20

_GZIP_MAGIC = b"\x1f\x8b"


class TraceImportError(TraceFileError):
    """A structured import failure: the file, plus every problem found."""

    def __init__(self, filename: str, problems: list[str]):
        self.filename = filename
        self.problems = list(problems)
        listing = "; ".join(self.problems[:MAX_PROBLEMS])
        super().__init__(f"{filename}: rejected ({listing})")


@dataclass
class ImportReport:
    """What one import did."""

    name: str
    source: str
    path: str
    records: int
    instructions: int
    digest: str
    problems: list[str] = field(default_factory=list)


def imported_dir(root: str | os.PathLike | None = None) -> Path:
    """Where canonical imported traces live (under the cache root)."""
    base = Path(root).expanduser() if root else default_cache_dir()
    return base / "imported"


def quarantine_dir(root: str | os.PathLike | None = None) -> Path:
    return imported_dir(root) / "quarantine"


# ------------------------------------------------------------- JSON form


def trace_to_json(trace: DynamicTrace) -> dict:
    """Serialize a trace to the documented JSON text interchange form."""
    instructions: dict[int, Instruction] = {}
    for record in trace:
        instructions.setdefault(record.pc, record.instruction)
    return {
        "format": JSON_FORMAT,
        "version": JSON_VERSION,
        "name": trace.name,
        "instructions": [
            {
                "address": address,
                "length": instr.length,
                "mnemonic": instr.mnemonic.value,
                "cond": instr.cond.value if instr.cond else None,
                "operands": [_encode_operand(op) for op in instr.operands],
                "label_targets": dict(sorted(instr.label_targets.items())),
            }
            for address, instr in sorted(instructions.items())
        ],
        "records": [
            {
                "pc": record.pc,
                "next_pc": record.next_pc,
                "flags": record.flags_after,
                "reg_writes": {
                    str(int(reg)): value
                    for reg, value in record.reg_writes.items()
                },
                "mem_ops": [
                    {
                        "store": op.is_store,
                        "address": op.address,
                        "size": op.size,
                        "data": op.data,
                    }
                    for op in record.mem_ops
                ],
                "branch_taken": record.branch_taken,
            }
            for record in trace
        ],
    }


def trace_from_json(payload: dict, filename: str | None = None) -> DynamicTrace:
    """Parse the JSON text interchange form (inverse of trace_to_json)."""
    where = filename or "<json>"
    if payload.get("format") != JSON_FORMAT:
        raise TraceFileError(
            f"{where}: not a {JSON_FORMAT} document "
            f"(format={payload.get('format')!r})"
        )
    version = payload.get("version")
    if version != JSON_VERSION:
        from repro.trace.tracefile import TraceVersionError

        raise TraceVersionError(version, JSON_VERSION, where)
    try:
        instructions: dict[int, Instruction] = {}
        for entry in payload.get("instructions", ()):
            instr = Instruction(
                mnemonic=Mnemonic(entry["mnemonic"]),
                operands=tuple(
                    _decode_operand(token) for token in entry["operands"]
                ),
                cond=Cond(entry["cond"]) if entry.get("cond") else None,
            )
            instr.address = int(entry["address"])
            instr.length = int(entry["length"])
            instr.label_targets = {
                str(k): int(v)
                for k, v in entry.get("label_targets", {}).items()
            }
            instructions[instr.address] = instr
        records = []
        for entry in payload.get("records", ()):
            pc = int(entry["pc"])
            if pc not in instructions:
                raise TraceFileError(
                    f"{where}: record references unknown pc {pc:#x}"
                )
            records.append(
                TraceRecord(
                    pc=pc,
                    instruction=instructions[pc],
                    next_pc=int(entry["next_pc"]),
                    reg_writes={
                        Reg(int(reg)): int(value)
                        for reg, value in entry.get("reg_writes", {}).items()
                    },
                    flags_after=(
                        None
                        if entry.get("flags") is None
                        else int(entry["flags"])
                    ),
                    mem_ops=tuple(
                        MemOp(
                            is_store=bool(op["store"]),
                            address=int(op["address"]),
                            size=int(op["size"]),
                            data=int(op["data"]),
                        )
                        for op in entry.get("mem_ops", ())
                    ),
                    branch_taken=(
                        None
                        if entry.get("branch_taken") is None
                        else bool(entry["branch_taken"])
                    ),
                )
            )
    except TraceFileError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFileError(
            f"{where}: malformed trace JSON: {type(exc).__name__}: {exc}"
        ) from exc
    return DynamicTrace(records, name=str(payload.get("name", "imported")))


# ------------------------------------------------------------- validation


def validate_trace(trace: DynamicTrace) -> list[str]:
    """Strict semantic validation; returns every problem found (capped)."""
    problems: list[str] = []

    def note(text: str) -> bool:
        problems.append(text)
        return len(problems) >= MAX_PROBLEMS

    if not len(trace):
        return ["trace has no records"]
    for i, record in enumerate(trace):
        instr = record.instruction
        if record.is_conditional_branch and record.branch_taken is None:
            if note(f"record {i}: conditional branch without direction"):
                return problems
        if not instr.is_branch and record.next_pc != record.pc + instr.length:
            if note(
                f"record {i}: next_pc {record.next_pc:#x} does not follow "
                f"{record.pc:#x}+{instr.length}"
            ):
                return problems
        if i + 1 < len(trace) and record.next_pc != trace[i + 1].pc:
            if note(
                f"record {i}: next_pc {record.next_pc:#x} breaks linkage to "
                f"record {i + 1} at {trace[i + 1].pc:#x}"
            ):
                return problems
        for op in record.mem_ops:
            if op.size not in (1, 2, 4):
                if note(f"record {i}: memory op size {op.size}"):
                    return problems
            elif not (0 <= op.address < 2**32):
                if note(f"record {i}: memory address {op.address:#x} not 32-bit"):
                    return problems
            elif not (0 <= op.data < 1 << (8 * op.size)):
                if note(
                    f"record {i}: memory data {op.data:#x} exceeds "
                    f"{op.size}-byte width"
                ):
                    return problems

    # Register-effect completeness: the injector is the real consumer —
    # run every record through it so an undecodable or transaction-short
    # trace fails at import, not mid-simulation.
    if not problems:
        injector = MicroOpInjector()
        for i, record in enumerate(trace):
            try:
                injector.inject(record)
            except (InjectionError, KeyError, ValueError) as exc:
                problems.append(f"record {i}: uop injection failed: {exc}")
                break
    return problems


# ----------------------------------------------------------------- import


def _sanitize_name(stem: str) -> str:
    cleaned = "".join(
        ch if (ch.isalnum() or ch in "_-") else "-" for ch in stem.lower()
    ).strip("-")
    if not cleaned:
        raise TraceFileError(f"cannot derive a workload name from {stem!r}")
    return NAME_PREFIX + cleaned


def _quarantine(source: Path, root: str | os.PathLike | None) -> Path | None:
    target_dir = quarantine_dir(root)
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / source.name
        shutil.copy2(source, target)
        return target
    except OSError:
        return None  # silent-ok: quarantine is best-effort evidence keeping


def decode_external(data: bytes, filename: str) -> DynamicTrace:
    """Decode either interchange form by sniffing the payload."""
    if data[:2] == _GZIP_MAGIC:
        return codec.decode_trace(data, filename=filename)
    stripped = data.lstrip()
    if stripped[:1] == b"{":
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise TraceFileError(f"{filename}: invalid JSON: {exc}") from exc
        return trace_from_json(payload, filename=filename)
    raise TraceFileError(
        f"{filename}: unrecognized trace format (expected RUTB binary or "
        f"{JSON_FORMAT} JSON)"
    )


def import_trace(
    path: str | os.PathLike,
    name: str | None = None,
    root: str | os.PathLike | None = None,
) -> ImportReport:
    """Validate and canonicalize one external trace file.

    On success the trace is re-encoded with the binary codec into the
    import directory and the returned report names the registered
    workload.  On failure the source file is quarantined and a
    :class:`TraceImportError` lists every problem.
    """
    source = Path(path)
    data = source.read_bytes()
    try:
        trace = decode_external(data, str(source))
    except TraceFileError as exc:
        _quarantine(source, root)
        if isinstance(exc, TraceImportError):
            raise
        raise TraceImportError(str(source), [str(exc)]) from exc

    problems = validate_trace(trace)
    if problems:
        _quarantine(source, root)
        raise TraceImportError(str(source), problems)

    workload_name = _sanitize_name(name or trace.name or source.stem)
    trace.name = workload_name
    payload = codec.encode_trace(trace)
    target_dir = imported_dir(root)
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / f"{workload_name}.rutb"
    fd, tmp_name = tempfile.mkstemp(dir=target_dir, prefix=".tmp-", suffix=".rutb")
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(payload)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass  # silent-ok: best-effort temp cleanup; original error re-raised
        raise

    stats = trace.stats()
    return ImportReport(
        name=workload_name,
        source=str(source),
        path=str(target),
        records=stats.x86_instructions,
        instructions=stats.unique_pcs,
        digest=hashlib.sha256(payload).hexdigest(),
    )


# --------------------------------------------------------------- registry


def _imported_workload(name: str, path: Path) -> "Workload":
    from repro.workloads.base import Workload

    digest = hashlib.sha256(path.read_bytes()).hexdigest()

    def load_trace(scale: int, seed: int) -> DynamicTrace:
        # Imported traces are fixed recordings: scale and seed select
        # nothing (the trace is the trace), but stay in the signature so
        # the runner treats imported and synthetic workloads uniformly.
        return codec.load_trace_binary(str(path))

    return Workload(
        name=name,
        category="Imported",
        description=f"imported trace ({path.name})",
        load_trace=load_trace,
        digest=digest,
    )


class ImportedTraceProvider:
    """Resolves ``ext-*`` names against the import directory.

    The directory is derived from the cache root environment at lookup
    time, so workers launched with the same ``REPRO_UOPT_CACHE_DIR`` see
    the same imported workloads.  (A CLI ``--cache-dir`` override that
    diverges from the environment is documented to not carry into pool
    workers for imported traces.)
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = root

    def lookup(self, name: str):
        if not name.startswith(NAME_PREFIX):
            return None
        path = imported_dir(self.root) / f"{name}.rutb"
        if not path.is_file():
            return None
        return _imported_workload(name, path)

    def names(self) -> list[str]:
        directory = imported_dir(self.root)
        if not directory.is_dir():
            return []
        return sorted(
            path.stem
            for path in directory.glob(f"{NAME_PREFIX}*.rutb")
        )


#: The process-wide provider instance (installed by repro.scenarios).
PROVIDER = ImportedTraceProvider()
