"""repro — reproduction of "Dynamic Optimization of Micro-Operations" (HPCA 2003).

A from-scratch implementation of the paper's full system: an x86-subset
assembler and functional emulator (the trace source), the rePLay-ISA
micro-operation translator, the rePLay frame constructor / optimizer /
frame cache / sequencer, a trace-cache baseline, an 8-wide timing model,
a state verifier, fourteen synthetic workloads, and an experiment harness
that regenerates every table and figure in the paper's evaluation.

Quickstart::

    from repro import build_workload, run_experiment, CONFIGS

    trace = build_workload("bzip2")
    result = run_experiment(trace, CONFIGS["RPO"])
    print(result.ipc_x86, result.uop_reduction)
"""

__version__ = "1.0.0"

from repro.x86 import Assembler, Cond, Emulator, Imm, Reg, mem
from repro.uops import Translator, Uop, UopOp, UReg
from repro.trace import DynamicTrace, MicroOpInjector

__all__ = [
    "Assembler",
    "Cond",
    "DynamicTrace",
    "Emulator",
    "Imm",
    "MicroOpInjector",
    "Reg",
    "Translator",
    "Uop",
    "UopOp",
    "UReg",
    "mem",
    "__version__",
]
