"""Reference interpreter for rePLay micro-operations.

Used by the State Verifier (paper §5.1.3) to check that decode flows and
optimized frames produce architectural effects identical to the original
x86 instruction stream, and by property-based tests as the semantic
ground truth for optimizer transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86.instructions import Cond, cond_holds
from repro.x86.registers import MASK32, to_signed
from repro.uops.uop import Uop, UopOp, UReg


class UopExecutionError(Exception):
    """Raised on malformed uops or faults (e.g. division by zero)."""


class AssertionFired(Exception):
    """Raised when an ASSERT/ASSERT_CMP condition does not hold."""

    def __init__(self, uop: Uop) -> None:
        super().__init__(f"assertion fired: {uop}")
        self.uop = uop


@dataclass
class UopState:
    """Register/flag/memory state for uop interpretation.

    ``memory`` maps byte address -> byte value; missing addresses read as
    the value supplied by ``memory_fallback`` (used by the verifier to
    seed loads from the trace's initial memory map).
    """

    regs: list[int] = field(default_factory=lambda: [0] * len(UReg))
    cf: bool = False
    zf: bool = False
    sf: bool = False
    of: bool = False
    memory: dict[int, int] = field(default_factory=dict)
    memory_fallback: "callable | None" = None

    def read_reg(self, reg: UReg) -> int:
        return self.regs[reg]

    def write_reg(self, reg: UReg, value: int) -> None:
        self.regs[reg] = value & MASK32

    def read_mem(self, address: int, size: int) -> int:
        value = 0
        for i in range(size):
            byte_addr = (address + i) & MASK32
            if byte_addr in self.memory:
                byte = self.memory[byte_addr]
            elif self.memory_fallback is not None:
                byte = self.memory_fallback(byte_addr)
            else:
                byte = 0
            value |= (byte & 0xFF) << (8 * i)
        return value

    def write_mem(self, address: int, value: int, size: int) -> None:
        for i in range(size):
            self.memory[(address + i) & MASK32] = (value >> (8 * i)) & 0xFF

    def set_flags(self, *, cf: bool, zf: bool, sf: bool, of: bool) -> None:
        self.cf, self.zf, self.sf, self.of = cf, zf, sf, of

    def flags_word(self) -> int:
        from repro.x86.registers import pack_flags

        return pack_flags(self.cf, self.zf, self.sf, self.of)

    def cond(self, cond: Cond) -> bool:
        return cond_holds(cond, cf=self.cf, zf=self.zf, sf=self.sf, of=self.of)


def _operand_b(state: UopState, uop: Uop) -> int:
    if uop.src_b is not None:
        return state.read_reg(uop.src_b)
    if uop.imm is not None:
        return uop.imm & MASK32
    raise UopExecutionError(f"{uop} has neither srcB nor imm")


def _mem_address(state: UopState, uop: Uop) -> int:
    address = uop.imm or 0
    if uop.src_a is not None:
        address += state.read_reg(uop.src_a)
    if uop.src_b is not None:
        address += state.read_reg(uop.src_b) * uop.scale
    return address & MASK32


def _alu_flags(state: UopState, uop: Uop, a: int, b: int, result: int) -> None:
    """IA-32 flag semantics for the flag-writing ALU opcodes."""
    op = uop.op
    zf = result == 0
    sf = bool(result & 0x8000_0000)
    if op is UopOp.ADD:
        cf = a + b > MASK32
        of = to_signed(a) + to_signed(b) != to_signed(result)
        if uop.preserves_cf:
            cf = state.cf
        state.set_flags(cf=cf, zf=zf, sf=sf, of=of)
    elif op is UopOp.SUB:
        cf = a < b
        of = to_signed(a) - to_signed(b) != to_signed(result)
        if uop.preserves_cf:
            cf = state.cf
        state.set_flags(cf=cf, zf=zf, sf=sf, of=of)
    elif op in (UopOp.AND, UopOp.OR, UopOp.XOR):
        state.set_flags(cf=False, zf=zf, sf=sf, of=False)
    elif op is UopOp.MUL:
        full = to_signed(a) * to_signed(b)
        overflow = to_signed(result) != full
        state.set_flags(cf=overflow, zf=zf, sf=sf, of=overflow)
    elif op is UopOp.NEG:
        state.set_flags(cf=a != 0, zf=zf, sf=sf, of=a == 0x8000_0000)
    elif op in (UopOp.SHL, UopOp.SHR, UopOp.SAR):
        pass  # handled inline (count-dependent)
    else:
        state.set_flags(cf=False, zf=zf, sf=sf, of=False)


def execute_uop(state: UopState, uop: Uop) -> None:
    """Execute one uop against ``state`` (control uops update nothing)."""
    op = uop.op

    if op is UopOp.NOP or op in (UopOp.JMP,):
        return
    if op is UopOp.JMPI:
        return  # target value is read by the sequencer, not modeled here
    if op is UopOp.BR:
        return  # direction is observed by the caller via state.cond
    if op is UopOp.ASSERT:
        assert uop.cond is not None
        if not state.cond(uop.cond):
            raise AssertionFired(uop)
        return
    if op is UopOp.ASSERT_CMP:
        a = state.read_reg(uop.src_a) if uop.src_a is not None else 0
        b = _operand_b(state, uop)
        kind = uop.cmp_kind or UopOp.SUB
        if kind is UopOp.SUB:
            result = (a - b) & MASK32
            state.set_flags(
                cf=a < b,
                zf=result == 0,
                sf=bool(result & 0x8000_0000),
                of=to_signed(a) - to_signed(b) != to_signed(result),
            )
        else:
            result = a & b
            state.set_flags(
                cf=False,
                zf=result == 0,
                sf=bool(result & 0x8000_0000),
                of=False,
            )
        assert uop.cond is not None
        if not state.cond(uop.cond):
            raise AssertionFired(uop)
        return

    if op is UopOp.LIMM:
        state.write_reg(uop.dst, uop.imm or 0)
        return
    if op is UopOp.MOV:
        state.write_reg(uop.dst, state.read_reg(uop.src_a))
        return
    if op is UopOp.LEA:
        state.write_reg(uop.dst, _mem_address(state, uop))
        return
    if op is UopOp.SEXT:
        raw = state.read_reg(uop.src_a)
        state.write_reg(uop.dst, to_signed(raw, 8 * uop.size) & MASK32)
        return
    if op is UopOp.LOAD:
        address = uop.mem_address
        if address is None:
            address = _mem_address(state, uop)
        value = state.read_mem(address, uop.size)
        if uop.sign_extend:
            value = to_signed(value, 8 * uop.size) & MASK32
        state.write_reg(uop.dst, value)
        return
    if op is UopOp.STORE:
        address = uop.mem_address
        if address is None:
            address = _mem_address(state, uop)
        value = state.read_reg(uop.src_data)
        state.write_mem(address, value, uop.size)
        return
    if op in (UopOp.DIVQ, UopOp.DIVR):
        low = state.read_reg(uop.src_a)
        divisor = to_signed(_operand_b(state, uop))
        high = state.read_reg(uop.src_data) if uop.src_data is not None else 0
        if divisor == 0:
            raise UopExecutionError(f"division by zero in {uop}")
        dividend = to_signed((high << 32) | low, bits=64)
        quotient = int(dividend / divisor)
        if op is UopOp.DIVQ:
            state.write_reg(uop.dst, quotient & MASK32)
        else:
            state.write_reg(uop.dst, (dividend - quotient * divisor) & MASK32)
        return

    # Flag-writing ALU group.
    a = state.read_reg(uop.src_a) if uop.src_a is not None else 0
    if op is UopOp.NEG:
        result = (-a) & MASK32
        if uop.writes_flags:
            _alu_flags(state, uop, a, 0, result)
    elif op is UopOp.NOT:
        result = (~a) & MASK32
    elif op in (UopOp.SHL, UopOp.SHR, UopOp.SAR):
        count = _operand_b(state, uop) & 0x1F
        if count == 0:
            result = a  # flags preserved, value unchanged
        else:
            if op is UopOp.SHL:
                result = (a << count) & MASK32
                cf = bool((a >> (32 - count)) & 1)
            elif op is UopOp.SHR:
                result = a >> count
                cf = bool((a >> (count - 1)) & 1)
            else:
                result = (to_signed(a) >> count) & MASK32
                cf = bool((to_signed(a) >> (count - 1)) & 1)
            if uop.writes_flags:
                state.set_flags(
                    cf=cf,
                    zf=result == 0,
                    sf=bool(result & 0x8000_0000),
                    of=False,
                )
    else:
        b = _operand_b(state, uop)
        if op is UopOp.ADD:
            result = (a + b) & MASK32
        elif op is UopOp.SUB:
            result = (a - b) & MASK32
        elif op is UopOp.AND:
            result = a & b
        elif op is UopOp.OR:
            result = a | b
        elif op is UopOp.XOR:
            result = a ^ b
        elif op is UopOp.MUL:
            result = (to_signed(a) * to_signed(b)) & MASK32
        else:  # pragma: no cover - exhaustive
            raise UopExecutionError(f"unimplemented uop {uop}")
        if uop.writes_flags:
            _alu_flags(state, uop, a, b, result)
    if uop.dst is not None:
        state.write_reg(uop.dst, result)


def execute_sequence(state: UopState, uops: list[Uop]) -> None:
    """Execute uops in order (no control transfer; frames are straight-line)."""
    for uop in uops:
        execute_uop(state, uop)
