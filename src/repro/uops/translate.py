"""x86 → rePLay-ISA decode flows.

Each x86 instruction decodes *independently* into one or more uops (paper
§3): this independence is exactly what creates the redundancy the
optimizer later removes.  The flows below are written to be "fairly
efficient" like the paper's, landing near the paper's 1.4 uops-per-x86
average on the workload mix.

Decode is purely static: given an :class:`Instruction`, the same uop
sequence always results.  Dynamic annotations (memory addresses, branch
directions) are attached later by the Micro-Op Injector.
"""

from __future__ import annotations

from repro.x86.instructions import (
    Cond,
    Imm,
    Instruction,
    Label,
    Mem,
    Mnemonic,
)
from repro.x86.registers import Reg
from repro.uops.uop import Uop, UopOp, UReg


class TranslationError(Exception):
    """Raised when an instruction has no decode flow."""


_ALU_MAP = {
    Mnemonic.ADD: UopOp.ADD,
    Mnemonic.SUB: UopOp.SUB,
    Mnemonic.AND: UopOp.AND,
    Mnemonic.OR: UopOp.OR,
    Mnemonic.XOR: UopOp.XOR,
    Mnemonic.SHL: UopOp.SHL,
    Mnemonic.SHR: UopOp.SHR,
    Mnemonic.SAR: UopOp.SAR,
}


def _ureg(reg: Reg) -> UReg:
    return UReg(int(reg))


def _mem_operands(operand: Mem) -> dict:
    """Translate a memory operand into uop address-expression fields."""
    return {
        "src_a": _ureg(operand.base) if operand.base is not None else None,
        "src_b": _ureg(operand.index) if operand.index is not None else None,
        "scale": operand.scale,
        "imm": operand.disp,
        "size": operand.size,
    }


class Translator:
    """Stateless x86-to-uop translator with a per-program decode cache."""

    def __init__(self) -> None:
        self._cache: dict[int, tuple[Uop, ...]] = {}

    def translate(self, instr: Instruction) -> tuple[Uop, ...]:
        """Decode ``instr``; results are cached by instruction address."""
        cached = self._cache.get(instr.address)
        if cached is not None:
            return cached
        uops = tuple(self._decode(instr))
        for uop in uops:
            uop.x86_pc = instr.address
        self._cache[instr.address] = uops
        return uops

    # ------------------------------------------------------------ decode

    def _decode(self, instr: Instruction) -> list[Uop]:
        mnem = instr.mnemonic
        ops = instr.operands

        if mnem is Mnemonic.NOP:
            return [Uop(UopOp.NOP)]

        if mnem is Mnemonic.MOV:
            return self._decode_mov(instr)
        if mnem in (Mnemonic.MOVZX, Mnemonic.MOVSX):
            dst, src = ops
            if not isinstance(src, Mem):
                raise TranslationError(
                    f"{mnem.name} requires a memory source: {instr}"
                )
            load = Uop(UopOp.LOAD, dst=_ureg(dst), **_mem_operands(src))
            load.sign_extend = mnem is Mnemonic.MOVSX
            return [load]
        if mnem is Mnemonic.LEA:
            dst, src = ops
            fields = _mem_operands(src)
            fields.pop("size")
            return [Uop(UopOp.LEA, dst=_ureg(dst), **fields)]

        if mnem in _ALU_MAP or mnem in (Mnemonic.CMP, Mnemonic.TEST):
            return self._decode_alu(instr)
        if mnem in (Mnemonic.INC, Mnemonic.DEC):
            return self._decode_incdec(instr)
        if mnem in (Mnemonic.NEG, Mnemonic.NOT):
            return self._decode_unary(instr)
        if mnem is Mnemonic.IMUL:
            return self._decode_imul(instr)
        if mnem is Mnemonic.IDIV:
            return self._decode_idiv(instr)
        if mnem is Mnemonic.CDQ:
            # EDX <- EAX >>(arithmetic) 31; CDQ writes no flags.
            return [
                Uop(UopOp.SAR, dst=UReg.EDX, src_a=UReg.EAX, imm=31)
            ]

        if mnem is Mnemonic.PUSH:
            return self._decode_push(instr)
        if mnem is Mnemonic.POP:
            return self._decode_pop(instr)
        if mnem is Mnemonic.CALL:
            return self._decode_call(instr)
        if mnem is Mnemonic.RET:
            return self._decode_ret(instr)
        if mnem is Mnemonic.JMP:
            return self._decode_jmp(instr)
        if mnem is Mnemonic.JCC:
            target = instr.label_targets[ops[0].name]  # type: ignore[union-attr]
            return [Uop(UopOp.BR, cond=instr.cond, target=target)]

        raise TranslationError(f"no decode flow for {instr}")

    # ------------------------------------------------------- decode flows

    def _decode_mov(self, instr: Instruction) -> list[Uop]:
        dst, src = instr.operands
        if isinstance(dst, Reg):
            if isinstance(src, Reg):
                return [Uop(UopOp.MOV, dst=_ureg(dst), src_a=_ureg(src))]
            if isinstance(src, Imm):
                return [Uop(UopOp.LIMM, dst=_ureg(dst), imm=src.value)]
            if isinstance(src, Mem):
                return [Uop(UopOp.LOAD, dst=_ureg(dst), **_mem_operands(src))]
        if isinstance(dst, Mem):
            if isinstance(src, Reg):
                return [Uop(UopOp.STORE, src_data=_ureg(src), **_mem_operands(dst))]
            if isinstance(src, Imm):
                return [
                    Uop(UopOp.LIMM, dst=UReg.ET0, imm=src.value),
                    Uop(UopOp.STORE, src_data=UReg.ET0, **_mem_operands(dst)),
                ]
        raise TranslationError(f"unsupported MOV form: {instr}")

    def _decode_alu(self, instr: Instruction) -> list[Uop]:
        mnem = instr.mnemonic
        dst, src = instr.operands
        is_compare = mnem in (Mnemonic.CMP, Mnemonic.TEST)
        op = {
            Mnemonic.CMP: UopOp.SUB,
            Mnemonic.TEST: UopOp.AND,
        }.get(mnem) or _ALU_MAP[mnem]

        uops: list[Uop] = []
        # Left operand.
        if isinstance(dst, Mem):
            uops.append(Uop(UopOp.LOAD, dst=UReg.ET0, **_mem_operands(dst)))
            left: UReg = UReg.ET0
        else:
            left = _ureg(dst)  # type: ignore[arg-type]
        # Right operand.
        src_b: UReg | None = None
        imm: int | None = None
        if isinstance(src, Reg):
            src_b = _ureg(src)
        elif isinstance(src, Imm):
            imm = src.value
        elif isinstance(src, Mem):
            uops.append(Uop(UopOp.LOAD, dst=UReg.ET1, **_mem_operands(src)))
            src_b = UReg.ET1
        else:
            raise TranslationError(f"unsupported ALU source: {instr}")

        result: UReg | None
        if is_compare:
            result = None
        elif isinstance(dst, Mem):
            result = UReg.ET2
        else:
            result = _ureg(dst)  # type: ignore[arg-type]
        uops.append(
            Uop(op, dst=result, src_a=left, src_b=src_b, imm=imm, writes_flags=True)
        )
        if not is_compare and isinstance(dst, Mem):
            uops.append(Uop(UopOp.STORE, src_data=UReg.ET2, **_mem_operands(dst)))
        return uops

    def _decode_incdec(self, instr: Instruction) -> list[Uop]:
        op = UopOp.ADD if instr.mnemonic is Mnemonic.INC else UopOp.SUB
        (dst,) = instr.operands
        if isinstance(dst, Reg):
            return [
                Uop(
                    op,
                    dst=_ureg(dst),
                    src_a=_ureg(dst),
                    imm=1,
                    writes_flags=True,
                    preserves_cf=True,
                )
            ]
        if isinstance(dst, Mem):
            return [
                Uop(UopOp.LOAD, dst=UReg.ET0, **_mem_operands(dst)),
                Uop(
                    op,
                    dst=UReg.ET1,
                    src_a=UReg.ET0,
                    imm=1,
                    writes_flags=True,
                    preserves_cf=True,
                ),
                Uop(UopOp.STORE, src_data=UReg.ET1, **_mem_operands(dst)),
            ]
        raise TranslationError(f"unsupported INC/DEC form: {instr}")

    def _decode_unary(self, instr: Instruction) -> list[Uop]:
        op = UopOp.NEG if instr.mnemonic is Mnemonic.NEG else UopOp.NOT
        writes_flags = instr.mnemonic is Mnemonic.NEG
        (dst,) = instr.operands
        if isinstance(dst, Reg):
            return [
                Uop(op, dst=_ureg(dst), src_a=_ureg(dst), writes_flags=writes_flags)
            ]
        if isinstance(dst, Mem):
            return [
                Uop(UopOp.LOAD, dst=UReg.ET0, **_mem_operands(dst)),
                Uop(op, dst=UReg.ET1, src_a=UReg.ET0, writes_flags=writes_flags),
                Uop(UopOp.STORE, src_data=UReg.ET1, **_mem_operands(dst)),
            ]
        raise TranslationError(f"unsupported NEG/NOT form: {instr}")

    def _decode_imul(self, instr: Instruction) -> list[Uop]:
        dst, src = instr.operands
        uops: list[Uop] = []
        if isinstance(src, Mem):
            uops.append(Uop(UopOp.LOAD, dst=UReg.ET0, **_mem_operands(src)))
            right: UReg | None = UReg.ET0
            imm = None
        elif isinstance(src, Reg):
            right, imm = _ureg(src), None
        else:
            right, imm = None, src.value  # type: ignore[union-attr]
        uops.append(
            Uop(
                UopOp.MUL,
                dst=_ureg(dst),
                src_a=_ureg(dst),
                src_b=right,
                imm=imm,
                writes_flags=True,
            )
        )
        return uops

    def _decode_idiv(self, instr: Instruction) -> list[Uop]:
        (src,) = instr.operands
        uops: list[Uop] = []
        if isinstance(src, Mem):
            uops.append(Uop(UopOp.LOAD, dst=UReg.ET0, **_mem_operands(src)))
            divisor: UReg = UReg.ET0
        elif isinstance(src, Reg):
            divisor = _ureg(src)
        else:
            raise TranslationError("IDIV by immediate is not valid x86")
        # x86 pins the dividend to EDX:EAX — the paper's example of how
        # non-uniform semantics constrain the compiler (§1).
        uops.append(
            Uop(
                UopOp.DIVQ,
                dst=UReg.ET1,
                src_a=UReg.EAX,
                src_b=divisor,
                src_data=UReg.EDX,
            )
        )
        uops.append(
            Uop(
                UopOp.DIVR,
                dst=UReg.EDX,
                src_a=UReg.EAX,
                src_b=divisor,
                src_data=UReg.EDX,
            )
        )
        uops.append(Uop(UopOp.MOV, dst=UReg.EAX, src_a=UReg.ET1))
        return uops

    def _decode_push(self, instr: Instruction) -> list[Uop]:
        (src,) = instr.operands
        uops: list[Uop] = []
        if isinstance(src, Reg):
            data: UReg = _ureg(src)
        elif isinstance(src, Imm):
            uops.append(Uop(UopOp.LIMM, dst=UReg.ET0, imm=src.value))
            data = UReg.ET0
        elif isinstance(src, Mem):
            uops.append(Uop(UopOp.LOAD, dst=UReg.ET0, **_mem_operands(src)))
            data = UReg.ET0
        else:
            raise TranslationError(f"unsupported PUSH form: {instr}")
        uops.append(
            Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=data)
        )
        uops.append(Uop(UopOp.SUB, dst=UReg.ESP, src_a=UReg.ESP, imm=4))
        return uops

    def _decode_pop(self, instr: Instruction) -> list[Uop]:
        (dst,) = instr.operands
        return [
            Uop(UopOp.LOAD, dst=_ureg(dst), src_a=UReg.ESP, imm=0),
            Uop(UopOp.ADD, dst=UReg.ESP, src_a=UReg.ESP, imm=4),
        ]

    def _decode_call(self, instr: Instruction) -> list[Uop]:
        (target,) = instr.operands
        retaddr = instr.address + instr.length
        uops: list[Uop] = [
            Uop(UopOp.LIMM, dst=UReg.ET3, imm=retaddr),
            Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.ET3),
            Uop(UopOp.SUB, dst=UReg.ESP, src_a=UReg.ESP, imm=4),
        ]
        if isinstance(target, Label):
            uops.append(Uop(UopOp.JMP, target=instr.label_targets[target.name]))
        elif isinstance(target, Reg):
            uops.append(Uop(UopOp.JMPI, src_a=_ureg(target)))
        elif isinstance(target, Mem):
            uops.insert(0, Uop(UopOp.LOAD, dst=UReg.ET4, **_mem_operands(target)))
            uops.append(Uop(UopOp.JMPI, src_a=UReg.ET4))
        else:
            raise TranslationError(f"unsupported CALL form: {instr}")
        return uops

    def _decode_ret(self, instr: Instruction) -> list[Uop]:
        # Matches the paper's Figure 2 flow (uops 15-17).
        return [
            Uop(UopOp.LOAD, dst=UReg.ET2, src_a=UReg.ESP, imm=0),
            Uop(UopOp.ADD, dst=UReg.ESP, src_a=UReg.ESP, imm=4),
            Uop(UopOp.JMPI, src_a=UReg.ET2),
        ]

    def _decode_jmp(self, instr: Instruction) -> list[Uop]:
        (target,) = instr.operands
        if isinstance(target, Label):
            return [Uop(UopOp.JMP, target=instr.label_targets[target.name])]
        if isinstance(target, Reg):
            return [Uop(UopOp.JMPI, src_a=_ureg(target))]
        if isinstance(target, Mem):
            return [
                Uop(UopOp.LOAD, dst=UReg.ET4, **_mem_operands(target)),
                Uop(UopOp.JMPI, src_a=UReg.ET4),
            ]
        raise TranslationError(f"unsupported JMP form: {instr}")
