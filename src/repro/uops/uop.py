"""The rePLay micro-operation ISA.

Real x86 micro-operation formats are proprietary, so — exactly as the
paper did (§5.1.1) — we model a generic RISC-like ISA with three-operand
micro-operations, explicit load/store uops carrying ``base + index*scale +
disp`` address expressions, and assertion uops for frame-internal control
(paper §2, §3).

Register space: the eight x86 architectural registers plus a small set of
temporaries (``ET0`` ...) used by multi-uop decode flows, mirroring the
paper's ``ET2`` in Figure 2.  Flags form a separate implicit register:
``writes_flags`` marks producers and condition-consuming uops (``BR``,
``ASSERT``) read the most recent flag definition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.x86.instructions import Cond

__all__ = ["UReg", "UopOp", "Uop", "Cond"]


class UReg(enum.IntEnum):
    """Micro-operation register identifiers.

    Values 0-7 coincide with :class:`repro.x86.registers.Reg` so that
    architectural registers convert by value.
    """

    EAX = 0
    ECX = 1
    EDX = 2
    EBX = 3
    ESP = 4
    EBP = 5
    ESI = 6
    EDI = 7
    ET0 = 8
    ET1 = 9
    ET2 = 10
    ET3 = 11
    ET4 = 12
    ET5 = 13

    @property
    def is_architectural(self) -> bool:
        return self < UReg.ET0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Temporaries available to decode flows.
TEMP_REGS: tuple[UReg, ...] = (
    UReg.ET0,
    UReg.ET1,
    UReg.ET2,
    UReg.ET3,
    UReg.ET4,
    UReg.ET5,
)

#: Architectural uop registers, by x86 register value.
ARCH_REGS: tuple[UReg, ...] = tuple(UReg(i) for i in range(8))


class UopOp(enum.Enum):
    """Micro-operation opcodes."""

    LIMM = "limm"  # dst <- imm
    MOV = "mov"  # dst <- srcA
    ADD = "add"  # dst <- srcA + (srcB | imm)
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    MUL = "mul"  # dst <- low32(srcA * srcB)   (signed)
    DIVQ = "divq"  # dst <- (src_data:srcA) / srcB (signed quotient)
    DIVR = "divr"  # dst <- (src_data:srcA) % srcB (signed remainder)
    NEG = "neg"
    NOT = "not"
    SEXT = "sext"  # dst <- sign_extend(srcA, size)
    LEA = "lea"  # dst <- srcA + srcB*scale + imm (no memory access)
    LOAD = "load"  # dst <- MEM[srcA + srcB*scale + imm]
    STORE = "store"  # MEM[srcA + srcB*scale + imm] <- src_data
    BR = "br"  # conditional branch on flags (frame exit / normal code)
    JMP = "jmp"  # unconditional direct jump
    JMPI = "jmpi"  # indirect jump to srcA
    ASSERT = "assert"  # fires (rolls back frame) unless cond holds on flags
    ASSERT_CMP = "assert_cmp"  # fused compare+assert (value assertion opt)
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: ALU opcodes that can take an immediate as their second operand and are
#: subject to reassociation / constant folding.
ALU_OPS = frozenset(
    {
        UopOp.ADD,
        UopOp.SUB,
        UopOp.AND,
        UopOp.OR,
        UopOp.XOR,
        UopOp.SHL,
        UopOp.SHR,
        UopOp.SAR,
        UopOp.MUL,
    }
)

#: Simple single-cycle ALU opcodes (for the timing model's FU classes).
SIMPLE_ALU_OPS = frozenset(
    {
        UopOp.LIMM,
        UopOp.MOV,
        UopOp.ADD,
        UopOp.SUB,
        UopOp.AND,
        UopOp.OR,
        UopOp.XOR,
        UopOp.SHL,
        UopOp.SHR,
        UopOp.SAR,
        UopOp.NEG,
        UopOp.NOT,
        UopOp.SEXT,
        UopOp.LEA,
        UopOp.NOP,
        UopOp.ASSERT,
        UopOp.ASSERT_CMP,
        UopOp.BR,
        UopOp.JMP,
        UopOp.JMPI,
    }
)

#: Multi-cycle "complex ALU" opcodes.
COMPLEX_ALU_OPS = frozenset({UopOp.MUL, UopOp.DIVQ, UopOp.DIVR})

CONTROL_OPS = frozenset({UopOp.BR, UopOp.JMP, UopOp.JMPI})

#: Shift opcodes whose flag output merges with the incoming flag word.
FLAG_SHIFT_OPS = frozenset({UopOp.SHL, UopOp.SHR, UopOp.SAR})


def uop_reads_flags(
    op: UopOp,
    cond: Cond | None,
    preserves_cf: bool,
    writes_flags: bool,
    has_dynamic_count: bool,
    imm: int | None,
) -> bool:
    """Whether a uop consumes the incoming flag definition.

    The single flags-dependence predicate shared by :class:`Uop`,
    :class:`repro.optimizer.optuop.OptUop`, and the timing model, so the
    frame and ICache scheduling paths agree on the dependence graph:

    * condition-consuming control (``BR``/``ASSERT``) reads flags;
    * partial flag writers (INC/DEC-derived ``preserves_cf``) merge the
      incoming CF into their output;
    * a flag-writing shift whose dynamic count may be zero passes the
      incoming flag word through unchanged, so it depends on it.
    """
    if cond is not None and op in (UopOp.BR, UopOp.ASSERT):
        return True
    if preserves_cf:
        return True
    if op in FLAG_SHIFT_OPS and writes_flags:
        return has_dynamic_count or ((imm or 0) & 0x1F) == 0
    return False


@dataclass
class Uop:
    """One micro-operation in the dynamic stream (pre-renaming form).

    Memory uops interpret ``(srcA, srcB, scale, imm)`` as the address
    expression ``srcA + srcB*scale + imm``; ``src_data`` is the stored
    value for ``STORE`` and the third operand (high half) for divides.
    """

    op: UopOp
    dst: UReg | None = None
    src_a: UReg | None = None
    src_b: UReg | None = None
    src_data: UReg | None = None
    imm: int | None = None
    scale: int = 1
    size: int = 4
    sign_extend: bool = False
    cond: Cond | None = None
    cmp_kind: UopOp | None = None  # for ASSERT_CMP: SUB (cmp) or AND (test)
    target: int | None = None  # static target for BR/JMP
    writes_flags: bool = False
    preserves_cf: bool = False  # INC/DEC-derived ADD/SUB keep CF
    x86_pc: int = 0  # owning x86 instruction address

    # Dynamic annotations (filled by the injector from the trace):
    mem_address: int | None = None
    taken: bool | None = None  # dynamic direction for BR
    dyn_target: int | None = None  # dynamic target for JMPI

    @property
    def is_load(self) -> bool:
        return self.op is UopOp.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is UopOp.STORE

    @property
    def is_mem(self) -> bool:
        return self.op in (UopOp.LOAD, UopOp.STORE)

    @property
    def is_control(self) -> bool:
        return self.op in CONTROL_OPS

    @property
    def is_assertion(self) -> bool:
        return self.op in (UopOp.ASSERT, UopOp.ASSERT_CMP)

    @property
    def reads_flags(self) -> bool:
        return uop_reads_flags(
            self.op,
            self.cond,
            self.preserves_cf,
            self.writes_flags,
            self.src_b is not None,
            self.imm,
        )

    def sources(self) -> tuple[UReg, ...]:
        """All register sources, in (srcA, srcB, src_data) order."""
        return tuple(
            r for r in (self.src_a, self.src_b, self.src_data) if r is not None
        )

    def copy(self, **changes) -> "Uop":
        """Field-for-field copy with overrides (uops are mutable records).

        Hand-rolled rather than ``dataclasses.replace``: copying is the
        injector's and frame constructor's hot path (one copy per dynamic
        uop), and ``replace`` re-runs the generated ``__init__`` — an
        order of magnitude slower than a ``__dict__`` clone.
        """
        new = Uop.__new__(Uop)
        state = dict(self.__dict__)
        if changes:
            state.update(changes)
        new.__dict__ = state
        return new

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_uop(self)


def format_uop(uop: Uop) -> str:
    """Render a uop in the paper's Figure-2 style for humans."""

    def reg(r: UReg | None) -> str:
        return str(r) if r is not None else "?"

    def addr() -> str:
        parts = []
        if uop.src_a is not None:
            parts.append(str(uop.src_a))
        if uop.src_b is not None:
            term = str(uop.src_b)
            if uop.scale != 1:
                term += f"*{uop.scale}"
            parts.append(term)
        if uop.imm:
            parts.append(f"{uop.imm:+#x}")
        return "[" + " ".join(parts) + "]"

    op = uop.op
    flags = ",flags" if uop.writes_flags else ""
    if op is UopOp.LOAD:
        return f"{reg(uop.dst)} <- {addr()}"
    if op is UopOp.STORE:
        return f"{addr()} <- {reg(uop.src_data)}"
    if op is UopOp.LIMM:
        return f"{reg(uop.dst)}{flags} <- {uop.imm:#x}"
    if op is UopOp.MOV:
        return f"{reg(uop.dst)}{flags} <- {reg(uop.src_a)}"
    if op is UopOp.LEA:
        return f"{reg(uop.dst)} <- &{addr()}"
    if op in (UopOp.BR,):
        return f"if ({uop.cond}) jump {uop.target:#x}"
    if op is UopOp.JMP:
        return f"jump {uop.target:#x}"
    if op is UopOp.JMPI:
        return f"jump ({reg(uop.src_a)})"
    if op is UopOp.ASSERT:
        return f"assert {uop.cond}"
    if op is UopOp.ASSERT_CMP:
        kind = "cmp" if uop.cmp_kind is UopOp.SUB else "test"
        right = reg(uop.src_b) if uop.src_b is not None else f"{uop.imm:#x}"
        return f"assert {uop.cond} ({kind} {reg(uop.src_a)}, {right})"
    if op is UopOp.NOP:
        return "nop"
    right = reg(uop.src_b) if uop.src_b is not None else (
        f"{uop.imm:#x}" if uop.imm is not None else ""
    )
    if op in (UopOp.NEG, UopOp.NOT, UopOp.SEXT):
        return f"{reg(uop.dst)}{flags} <- {op.value} {reg(uop.src_a)}"
    return f"{reg(uop.dst)}{flags} <- {reg(uop.src_a)} {op.value} {right}"
