"""rePLay micro-operation ISA: uop format, x86 decode flows, interpreter."""

from repro.uops.interp import (
    AssertionFired,
    UopExecutionError,
    UopState,
    execute_sequence,
    execute_uop,
)
from repro.uops.translate import TranslationError, Translator
from repro.uops.uop import ARCH_REGS, TEMP_REGS, Uop, UopOp, UReg, format_uop

__all__ = [
    "ARCH_REGS",
    "AssertionFired",
    "TEMP_REGS",
    "TranslationError",
    "Translator",
    "Uop",
    "UopExecutionError",
    "UopOp",
    "UopState",
    "UReg",
    "execute_sequence",
    "execute_uop",
    "format_uop",
]
